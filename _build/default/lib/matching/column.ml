open Relational

type t = {
  owner : string;
  attribute : Attribute.t;
  values : Value.t array;
  mutable profile : Textsim.Profile.t option;
  mutable summary : Stats.Descriptive.summary option;
  mutable distinct : string list option;
}

let make ~owner attribute values =
  { owner; attribute; values; profile = None; summary = None; distinct = None }

let of_table table attr_name =
  make ~owner:(Table.name table)
    (Schema.attribute (Table.schema table) attr_name)
    (Table.column table attr_name)

let of_view view attr_name =
  make ~owner:(View.name view)
    (Schema.attribute (Relational.Table.schema (View.base view)) attr_name)
    (View.column view attr_name)

let owner t = t.owner
let attribute t = t.attribute
let name t = t.attribute.Attribute.name
let values t = t.values
let size t = Array.length t.values

let non_null_count t =
  Array.fold_left (fun acc v -> if Value.is_null v then acc else acc + 1) 0 t.values

let strings t =
  Array.to_list t.values
  |> List.filter_map (fun v -> if Value.is_null v then None else Some (Value.to_string v))
  |> Array.of_list

let floats t =
  Array.to_list t.values |> List.filter_map Value.to_float |> Array.of_list

let profile t =
  match t.profile with
  | Some p -> p
  | None ->
    let p = Textsim.Profile.of_strings_array (strings t) in
    t.profile <- Some p;
    p

let summary t =
  match t.summary with
  | Some s -> s
  | None ->
    let s = Stats.Descriptive.summarize (floats t) in
    t.summary <- Some s;
    s

let distinct_strings t =
  match t.distinct with
  | Some d -> d
  | None ->
    let d = strings t |> Array.to_list |> List.sort_uniq String.compare in
    t.distinct <- Some d;
    d
