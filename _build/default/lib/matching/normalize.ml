type t = { mean : float; stddev : float }

let of_scores scores =
  let s = Stats.Descriptive.summarize scores in
  { mean = s.Stats.Descriptive.mean; stddev = s.Stats.Descriptive.stddev }

let confidence t score =
  if t.stddev <= 1e-12 then 0.5
  else Stats.Distribution.phi ((score -. t.mean) /. t.stddev)

let gated_confidence t score = confidence t score *. sqrt (Float.max 0.0 score)

let combine weighted =
  let wsum = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  if wsum <= 0.0 then 0.0
  else List.fold_left (fun acc (w, c) -> acc +. (w *. c)) 0.0 weighted /. wsum
