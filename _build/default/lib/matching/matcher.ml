open Relational

type t = {
  name : string;
  weight : float;
  applicable : Attribute.t -> Attribute.t -> bool;
  score : Column.t -> Column.t -> float;
}

let make ~name ?(weight = 1.0) ~applicable score = { name; weight; applicable; score }

let applicable_pair t src tgt = t.applicable (Column.attribute src) (Column.attribute tgt)

let score t src tgt = Float.min 1.0 (Float.max 0.0 (t.score src tgt))
