lib/matching/column.mli: Attribute Relational Stats Table Textsim Value View
