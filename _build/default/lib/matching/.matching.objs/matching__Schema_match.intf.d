lib/matching/schema_match.mli: Condition Format Relational
