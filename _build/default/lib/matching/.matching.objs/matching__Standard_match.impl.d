lib/matching/standard_match.ml: Array Column Database Float Hashtbl List Matcher Matchers Normalize Relational Schema Schema_match String Table View
