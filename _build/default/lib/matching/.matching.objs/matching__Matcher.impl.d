lib/matching/matcher.ml: Attribute Column Float Relational
