lib/matching/normalize.ml: Float List Stats
