lib/matching/schema_match.ml: Condition Format Printf Relational String
