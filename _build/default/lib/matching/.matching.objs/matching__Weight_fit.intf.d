lib/matching/weight_fit.mli: Database Matcher Relational
