lib/matching/normalize.mli:
