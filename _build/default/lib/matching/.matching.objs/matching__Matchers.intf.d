lib/matching/matchers.mli: Matcher
