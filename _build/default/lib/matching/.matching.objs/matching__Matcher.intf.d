lib/matching/matcher.mli: Attribute Column Relational
