lib/matching/standard_match.mli: Database Matcher Relational Schema_match View
