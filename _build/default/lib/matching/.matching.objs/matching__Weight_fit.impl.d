lib/matching/weight_fit.ml: Database Float List Matcher Relational Schema_match Standard_match Stats
