lib/matching/column.ml: Array Attribute List Relational Schema Stats String Table Textsim Value View
