lib/matching/matchers.ml: Array Attribute Column Float List Matcher Relational Stats String Textsim Value
