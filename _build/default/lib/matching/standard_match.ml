open Relational

type target_col = { table : string; column : Column.t }

type model = {
  gated : bool;
  matchers : Matcher.t list;
  source_db : Database.t;
  target_db : Database.t;
  target_cols : target_col list;
  (* (src_table, src_attr) -> Column *)
  source_cols : (string * string, Column.t) Hashtbl.t;
  (* (src_table, src_attr, matcher) -> raw-score normalisation stats *)
  stats : (string * string * string, Normalize.t) Hashtbl.t;
  (* (src_table, src_attr, tgt_table, tgt_attr, matcher) -> raw score *)
  raw : (string * string * string * string * string, float) Hashtbl.t;
}

let source m = m.source_db
let target m = m.target_db

let build ?(gated = true) ?(matchers = Matchers.default_suite) ~source ~target () =
  let target_cols =
    List.concat_map
      (fun tbl ->
        List.map
          (fun attr -> { table = Table.name tbl; column = Column.of_table tbl attr })
          (Schema.attribute_names (Table.schema tbl)))
      (Database.tables target)
  in
  let source_cols = Hashtbl.create 64 in
  let stats = Hashtbl.create 256 in
  let raw = Hashtbl.create 4096 in
  List.iter
    (fun src_tbl ->
      let src_name = Table.name src_tbl in
      List.iter
        (fun src_attr ->
          let src_col = Column.of_table src_tbl src_attr in
          Hashtbl.replace source_cols (src_name, src_attr) src_col;
          List.iter
            (fun matcher ->
              (* Raw scores of this matcher from this source attribute to
                 every applicable target attribute. *)
              (* Inapplicable pairs count as score 0 in the distribution
                 (they are real alternatives the matcher cannot rank),
                 anchoring the z-normalisation at an absolute floor; but
                 they never contribute a confidence to the combination
                 step. *)
              let scores = ref [] in
              let applicable_count = ref 0 in
              List.iter
                (fun tgt ->
                  if Matcher.applicable_pair matcher src_col tgt.column then begin
                    let s = Matcher.score matcher src_col tgt.column in
                    Hashtbl.replace raw
                      (src_name, src_attr, tgt.table, Column.name tgt.column, matcher.Matcher.name)
                      s;
                    incr applicable_count;
                    scores := s :: !scores
                  end
                  else scores := 0.0 :: !scores)
                target_cols;
              if !applicable_count > 0 then
                Hashtbl.replace stats
                  (src_name, src_attr, matcher.Matcher.name)
                  (Normalize.of_scores (Array.of_list !scores)))
            matchers)
        (Schema.attribute_names (Table.schema src_tbl)))
    (Database.tables source);
  { gated; matchers; source_db = source; target_db = target; target_cols; source_cols; stats; raw }

let confidence m ~src_table ~src_attr ~tgt_table ~tgt_attr =
  let weighted =
    List.filter_map
      (fun (matcher : Matcher.t) ->
        match
          Hashtbl.find_opt m.raw (src_table, src_attr, tgt_table, tgt_attr, matcher.name)
        with
        | None -> None
        | Some score -> (
          match Hashtbl.find_opt m.stats (src_table, src_attr, matcher.name) with
          | None -> None
          | Some st -> Some (matcher.weight, (if m.gated then Normalize.gated_confidence else Normalize.confidence) st score)))
      m.matchers
  in
  Normalize.combine weighted

let matches_from m ~src_table ~tau =
  let src_tbl = Database.table m.source_db src_table in
  let results = ref [] in
  List.iter
    (fun src_attr ->
      List.iter
        (fun tgt ->
          let tgt_attr = Column.name tgt.column in
          let conf = confidence m ~src_table ~src_attr ~tgt_table:tgt.table ~tgt_attr in
          if conf >= tau then
            results :=
              Schema_match.standard ~src_table ~src_attr ~tgt_table:tgt.table ~tgt_attr conf
              :: !results)
        m.target_cols)
    (Schema.attribute_names (Table.schema src_tbl));
  List.sort
    (fun (a : Schema_match.t) b -> Float.compare b.confidence a.confidence)
    !results

let matches m ~tau =
  Database.table_names m.source_db
  |> List.concat_map (fun src_table -> matches_from m ~src_table ~tau)
  |> List.sort (fun (a : Schema_match.t) b -> Float.compare b.confidence a.confidence)

let score_view m view ~src_attr ~tgt_table ~tgt_attr =
  if View.row_count view = 0 then 0.0
  else begin
    let src_table = Table.name (View.base view) in
    let src_col = Column.of_view view src_attr in
    let weighted =
      List.filter_map
        (fun (matcher : Matcher.t) ->
          match Hashtbl.find_opt m.stats (src_table, src_attr, matcher.name) with
          | None -> None
          | Some st ->
            let tgt =
              List.find_opt
                (fun tc ->
                  String.equal tc.table tgt_table && String.equal (Column.name tc.column) tgt_attr)
                m.target_cols
            in
            (match tgt with
            | None -> None
            | Some tgt when Matcher.applicable_pair matcher src_col tgt.column ->
              let s = Matcher.score matcher src_col tgt.column in
              Some (matcher.weight, (if m.gated then Normalize.gated_confidence else Normalize.confidence) st s)
            | Some _ -> None))
        m.matchers
    in
    Normalize.combine weighted
  end

let view_matches m view ~base_matches =
  let base_name = Table.name (View.base view) in
  (* Reuse one Column per source attribute of the view across matchers:
     the Column caches its profile/summary internally. *)
  let col_cache = Hashtbl.create 8 in
  let view_column attr =
    match Hashtbl.find_opt col_cache attr with
    | Some c -> c
    | None ->
      let c = Column.of_view view attr in
      Hashtbl.add col_cache attr c;
      c
  in
  let score_one (bm : Schema_match.t) =
    if View.row_count view = 0 then None
    else begin
      let src_col = view_column bm.src_attr in
      let weighted =
        List.filter_map
          (fun (matcher : Matcher.t) ->
            match Hashtbl.find_opt m.stats (base_name, bm.src_attr, matcher.name) with
            | None -> None
            | Some st ->
              let tgt =
                List.find_opt
                  (fun tc ->
                    String.equal tc.table bm.tgt_table
                    && String.equal (Column.name tc.column) bm.tgt_attr)
                  m.target_cols
              in
              (match tgt with
              | Some tgt when Matcher.applicable_pair matcher src_col tgt.column ->
                let s = Matcher.score matcher src_col tgt.column in
                Some (matcher.weight, (if m.gated then Normalize.gated_confidence else Normalize.confidence) st s)
              | Some _ | None -> None))
          m.matchers
      in
      match weighted with
      | [] -> None
      | _ ->
        Some
          (Schema_match.contextual ~view_name:(View.name view) ~src_base:base_name
             ~src_attr:bm.src_attr ~tgt_table:bm.tgt_table ~tgt_attr:bm.tgt_attr
             ~condition:(View.condition view) (Normalize.combine weighted))
    end
  in
  (* Matches on the view's conditioning attribute(s) are not re-scored:
     the paper's views project the selection attribute away (§4.2,
     Example 4.1), and inside the view the column is constant anyway. *)
  let condition_attrs = Relational.Condition.attributes (View.condition view) in
  base_matches
  |> List.filter (fun (bm : Schema_match.t) ->
         String.equal bm.src_base base_name
         && not (List.mem bm.src_attr condition_attrs))
  |> List.filter_map score_one
