(** A column handed to matchers: owning table/view name, attribute, and
    the bag of sample values.  Expensive derived artefacts (q-gram
    profile, numeric summary, distinct set) are computed lazily and
    cached, so re-scoring the same column across many matchers or view
    evaluations costs one pass. *)

open Relational

type t

val make : owner:string -> Attribute.t -> Value.t array -> t
val of_table : Table.t -> string -> t
val of_view : View.t -> string -> t
val owner : t -> string
val attribute : t -> Attribute.t
val name : t -> string
(** Attribute name. *)

val values : t -> Value.t array
val size : t -> int
(** Number of values including nulls. *)

val non_null_count : t -> int

val strings : t -> string array
(** Display strings of non-null values. *)

val floats : t -> float array
(** Numeric images of the values that have one. *)

val profile : t -> Textsim.Profile.t
(** 3-gram profile over {!strings} (cached). *)

val summary : t -> Stats.Descriptive.summary
(** Numeric summary over {!floats} (cached). *)

val distinct_strings : t -> string list
(** Distinct display strings, sorted (cached). *)
