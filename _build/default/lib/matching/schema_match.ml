open Relational

type t = {
  src_owner : string;
  src_base : string;
  src_attr : string;
  tgt_table : string;
  tgt_attr : string;
  condition : Condition.t;
  confidence : float;
}

let standard ~src_table ~src_attr ~tgt_table ~tgt_attr confidence =
  {
    src_owner = src_table;
    src_base = src_table;
    src_attr;
    tgt_table;
    tgt_attr;
    condition = Condition.True;
    confidence;
  }

let contextual ~view_name ~src_base ~src_attr ~tgt_table ~tgt_attr ~condition confidence =
  { src_owner = view_name; src_base; src_attr; tgt_table; tgt_attr; condition; confidence }

let is_contextual t = t.condition <> Condition.True

let same_edge a b =
  String.equal a.src_base b.src_base
  && String.equal a.src_attr b.src_attr
  && String.equal a.tgt_table b.tgt_table
  && String.equal a.tgt_attr b.tgt_attr

let with_confidence t confidence = { t with confidence }

let to_string t =
  let ctx =
    match t.condition with
    | Condition.True -> ""
    | c -> Printf.sprintf " [%s]" (Condition.to_string c)
  in
  Printf.sprintf "%s.%s -> %s.%s%s (%.3f)" t.src_base t.src_attr t.tgt_table t.tgt_attr ctx
    t.confidence

let pp fmt t = Format.pp_print_string fmt (to_string t)
