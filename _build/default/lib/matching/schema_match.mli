(** The match triple of the paper (§2.1): (R_s.s, R_t.t, c) plus the
    confidence assigned by the matcher.  A standard match has
    [condition = True] and a base table as source; otherwise the match
    is contextual and [src_owner] names the view. *)

open Relational

type t = {
  src_owner : string;  (** source display name: base table or view name *)
  src_base : string;  (** underlying base table *)
  src_attr : string;
  tgt_table : string;
  tgt_attr : string;
  condition : Condition.t;  (** [True] for standard matches *)
  confidence : float;  (** combined, in [0, 1] *)
}

val standard :
  src_table:string -> src_attr:string -> tgt_table:string -> tgt_attr:string -> float -> t

val contextual :
  view_name:string ->
  src_base:string ->
  src_attr:string ->
  tgt_table:string ->
  tgt_attr:string ->
  condition:Condition.t ->
  float ->
  t

val is_contextual : t -> bool
val same_edge : t -> t -> bool
(** Equal on (base, src attr, target table, target attr) — ignoring
    condition and confidence. *)

val with_confidence : t -> float -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
