open Relational

type t = {
  src_table : string;
  src_attr : string;
  tgt_base : string;
  tgt_view : string;
  tgt_attr : string;
  condition : Condition.t;
  confidence : float;
}

let to_string t =
  let ctx =
    match t.condition with
    | Condition.True -> ""
    | c -> Printf.sprintf " [target: %s]" (Condition.to_string c)
  in
  Printf.sprintf "%s.%s -> %s.%s%s (%.3f)" t.src_table t.src_attr t.tgt_base t.tgt_attr ctx
    t.confidence

let run ?(config = Config.default) ~algorithm ~source ~target () =
  (* Reverse the roles: the original target plays "source" so its tables
     get partitioned into candidate views; TgtClassInfer's tagging side
     is then the original source. *)
  let infer = Context_match.infer_of algorithm ~target:source in
  let result = Context_match.run ~config ~infer ~source:target ~target:source () in
  let flipped =
    List.map
      (fun (m : Matching.Schema_match.t) ->
        {
          src_table = m.tgt_table;
          src_attr = m.tgt_attr;
          tgt_base = m.src_base;
          tgt_view = m.src_owner;
          tgt_attr = m.src_attr;
          condition = m.condition;
          confidence = m.confidence;
        })
      result.Context_match.matches
  in
  (flipped, result)
