(** The InferCandidateViews interface (paper Fig. 5 line 5).

    Given a source table and the standard matches found for it, produce
    candidate view families.  Implementations: {!Naive_infer},
    {!Src_class_infer}, {!Tgt_class_infer}. *)

open Relational

type t = {
  infer_name : string;
  infer :
    Stats.Rng.t ->
    Config.t ->
    source_table:Table.t ->
    matches:Matching.Schema_match.t list ->
    View.family list;
      (** [matches] are the standard matches originating from the table;
          when empty no views are returned (Fig. 5: "no conditions will
          be returned if M is empty"). *)
}

val views_of_families : View.family list -> View.t list
(** All views of all families, deduplicated by condition. *)
