open Relational

type teacher = {
  teacher_name : string;
  prepare :
    table:Table.t ->
    h:string ->
    label_of:(Table.row -> string) ->
    train:Table.row array ->
    Table.row ->
    string option;
}

type verdict = {
  h_attr : string;
  l_attr : string;
  quality : float;
  null_likelihood : float;
  significant : bool;
  confusion : Stats.Confusion.t;
}

let feature_of table ~h row =
  let i = Schema.index_of (Table.schema table) h in
  match row.(i) with
  | Value.Null -> Learn.Classifier.Missing
  | Value.Int n -> Learn.Classifier.Number (float_of_int n)
  | Value.Float f -> Learn.Classifier.Number f
  | Value.String s -> Learn.Classifier.Text s
  | Value.Bool b -> Learn.Classifier.Text (string_of_bool b)

let evaluate rng (config : Config.t) teacher table ~h ~l ~label_map =
  let schema = Table.schema table in
  let l_idx = Schema.index_of schema l in
  let rows =
    Array.of_list
      (List.filter
         (fun row -> not (Value.is_null row.(l_idx)))
         (Array.to_list (Table.rows table)))
  in
  if Array.length rows < 4 then None
  else begin
    let label_of row = label_map row.(l_idx) in
    let distinct_labels =
      Array.to_list rows |> List.map label_of |> List.sort_uniq String.compare
    in
    if List.length distinct_labels < 2 then None
    else begin
      let train, test =
        Stats.Sampling.stratified_split rng ~label:label_of
          ~train_fraction:config.Config.train_fraction rows
      in
      if Array.length train = 0 || Array.length test = 0 then None
      else begin
        let predict = teacher.prepare ~table ~h ~label_of ~train in
        let prior = Learn.Evaluation.majority_prior (Array.map label_of train) in
        let outcome =
          Learn.Evaluation.test ~threshold:config.Config.significance ~classify:predict
            ~label_of ~majority_prior:prior test
        in
        Some
          {
            h_attr = h;
            l_attr = l;
            quality = outcome.Learn.Evaluation.quality;
            null_likelihood = outcome.Learn.Evaluation.null_likelihood;
            significant = outcome.Learn.Evaluation.significant;
            confusion = outcome.Learn.Evaluation.confusion;
          }
      end
    end
  end

let non_categorical_attributes (config : Config.t) table =
  let categorical =
    Categorical.categorical_attributes ~params:config.Config.categorical_params table
  in
  Schema.attribute_names (Table.schema table)
  |> List.filter (fun a -> not (List.mem a categorical))

let best_verdict rng config teacher table ~l =
  let candidates = List.filter (fun h -> h <> l) (non_categorical_attributes config table) in
  List.fold_left
    (fun best h ->
      (* A fresh split per h keeps verdicts independent. *)
      let verdict = evaluate (Stats.Rng.split rng) config teacher table ~h ~l
          ~label_map:Value.to_string
      in
      match verdict with
      | Some v when v.significant -> (
        match best with
        | Some b when b.quality >= v.quality -> best
        | Some _ | None -> Some v)
      | Some _ | None -> best)
    None candidates

(* --- EarlyDisjuncts label merging (paper §3.3) ----------------------- *)

(* Groups of l-values; the classification label of a group is the sorted
   concatenation of its members' display strings. *)
module Groups = struct
  type t = Value.t list list

  let initial values : t = List.map (fun v -> [ v ]) values

  let label_of_group group =
    group |> List.map Value.to_string |> List.sort String.compare |> String.concat "|"

  let label_map (groups : t) value =
    let s = Value.to_string value in
    let group =
      List.find_opt (fun g -> List.exists (fun v -> Value.to_string v = s) g) groups
    in
    match group with Some g -> label_of_group g | None -> s

  let merge (groups : t) label1 label2 : t option =
    let g1 = List.find_opt (fun g -> label_of_group g = label1) groups in
    let g2 = List.find_opt (fun g -> label_of_group g = label2) groups in
    match (g1, g2) with
    | Some g1, Some g2 when g1 != g2 ->
      let rest = List.filter (fun g -> g != g1 && g != g2) groups in
      Some ((g1 @ g2) :: rest)
    | _, _ -> None
end

let merged_families rng (config : Config.t) teacher table ~l ~h =
  let values = Table.distinct_values table l in
  let rec loop groups acc =
    if List.length groups < 2 then List.rev acc
    else begin
      let label_map = Groups.label_map groups in
      match evaluate (Stats.Rng.split rng) config teacher table ~h ~l ~label_map with
      | None -> List.rev acc
      | Some verdict -> (
        match Stats.Confusion.normalized_error_pairs verdict.confusion with
        | [] -> List.rev acc (* no errors: nothing left to merge *)
        | ((v, v'), _) :: _ -> (
          match Groups.merge groups v v' with
          | None ->
            (* The confused pair involves the abstain label or labels we
               cannot merge; stop. *)
            List.rev acc
          | Some merged ->
            (* Re-evaluate the merged grouping; if significant, its view
               family is a candidate. *)
            let label_map' = Groups.label_map merged in
            let family =
              match
                evaluate (Stats.Rng.split rng) config teacher table ~h ~l
                  ~label_map:label_map'
              with
              | Some verdict' when verdict'.significant ->
                Some
                  (View.family_of_values ~quality:verdict'.quality table l merged)
              | Some _ | None -> None
            in
            let acc = match family with Some f -> f :: acc | None -> acc in
            loop merged acc))
    end
  in
  loop (Groups.initial values) []

let generate rng (config : Config.t) teacher table =
  let categorical =
    Categorical.categorical_attributes ~params:config.Config.categorical_params table
  in
  List.concat_map
    (fun l ->
      match best_verdict (Stats.Rng.split rng) config teacher table ~l with
      | None -> []
      | Some verdict ->
        let simple =
          View.partition_family ~quality:verdict.quality table l
        in
        let merged =
          if config.Config.early_disjuncts then
            merged_families (Stats.Rng.split rng) config teacher table ~l ~h:verdict.h_attr
          else []
        in
        simple :: merged)
    categorical
