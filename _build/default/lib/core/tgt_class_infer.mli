(** TgtClassInfer (paper §3.2.4, Fig. 7).

    Per basic type D, a classifier C_D is trained on the *target*
    columns of that type ("createTargetClassifier"): given a value it
    guesses the target column ("tag", e.g. Book.Title) the value most
    resembles.  During doTraining a bag TBag of (tag, l-value) pairs is
    collected over the source training rows; acc(g,v) = P(v|g) and
    prec(g,v) = P(g|v) combine into score(g,v) = acc * prec, and
    bestCAT(g) is the score-maximising l-value (ties to the more common
    value).  The induced classifier is row -> bestCAT(C_D(row.h)). *)

open Relational

type tagger

val make_tagger : Database.t -> tagger
(** Train the per-type target classifiers on a target database. *)

val tag : tagger -> Learn.Classifier.feature -> string option
(** The target column a value most resembles, as "table.attr". *)

val teacher : Database.t -> Clustered_view_gen.teacher
(** A teacher whose predictors go through tags and bestCAT. *)

val infer : Database.t -> Infer.t
(** InferCandidateViews backed by {!teacher} of the given target
    database. *)
