(** SrcClassInfer (paper §3.2.3): the classifier C_h is trained directly
    on the source values of h — naive Bayes over 3-grams for text,
    a Gaussian class-conditional model for numbers. *)

val teacher : Clustered_view_gen.teacher
val infer : Infer.t
