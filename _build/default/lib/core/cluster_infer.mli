(** ClusterInfer — the third view-inference technique the paper
    evaluated ("a third technique based on clustering was also
    evaluated, but its performance was similar to SrcClassInfer and we
    omit it for brevity", §3.2.2).

    Instead of training a supervised classifier on h -> l, the h-values
    of the training rows are clustered unsupervised into as many
    clusters as l has labels (1-D k-means for numbers, k-medoids over
    3-gram distance for text); each cluster is then tagged with its
    majority l-label, and the induced predictor maps a row to the label
    of its nearest cluster.  Well-clustered attributes again pass the
    §3.2.2 significance test. *)

val kmeans_1d :
  Stats.Rng.t -> k:int -> float array -> float array
(** [kmeans_1d rng ~k xs] returns the cluster centres (sorted, at most
    [k]; fewer when there are fewer distinct values).  Lloyd iterations
    from quantile-seeded centres; deterministic given the rng. *)

val nearest : float array -> float -> int
(** Index of the closest centre. *)

val teacher : Clustered_view_gen.teacher
val infer : Infer.t
