open Relational

type tagger = {
  text : Learn.Naive_bayes.t;
  numeric : Learn.Gaussian_nb.t;
}

let make_tagger target_db =
  let text = Learn.Naive_bayes.create () in
  let numeric = Learn.Gaussian_nb.create () in
  List.iter
    (fun table ->
      let table_name = Table.name table in
      Array.iter
        (fun (attr : Attribute.t) ->
          let label = Printf.sprintf "%s.%s" table_name attr.name in
          Array.iter
            (fun v ->
              match v with
              | Value.Null -> ()
              | Value.Int n -> Learn.Gaussian_nb.train numeric ~label (float_of_int n)
              | Value.Float f -> Learn.Gaussian_nb.train numeric ~label f
              | Value.String s ->
                Learn.Naive_bayes.train text ~label (Textsim.Tokenize.trigrams s)
              | Value.Bool b ->
                Learn.Naive_bayes.train text ~label (Textsim.Tokenize.trigrams (string_of_bool b)))
            (Table.column table attr.name))
        (Schema.attributes (Table.schema table)))
    (Database.tables target_db);
  { text; numeric }

let tag tagger feature =
  match feature with
  | Learn.Classifier.Missing -> None
  | Learn.Classifier.Text s -> Learn.Naive_bayes.classify tagger.text (Textsim.Tokenize.trigrams s)
  | Learn.Classifier.Number x -> Learn.Gaussian_nb.classify tagger.numeric x

(* TBag statistics: for tag g and label v, score(g,v) = P(v|g) * P(g|v);
   bestCAT(g) maximises the score with ties to the more common label. *)
module Tbag = struct
  type t = {
    pair_counts : (string * string, int) Hashtbl.t;
    tag_counts : (string, int) Hashtbl.t;
    label_counts : (string, int) Hashtbl.t;
    mutable total : int;
  }

  let create () =
    {
      pair_counts = Hashtbl.create 64;
      tag_counts = Hashtbl.create 16;
      label_counts = Hashtbl.create 16;
      total = 0;
    }

  let bump table key =
    let n = try Hashtbl.find table key with Not_found -> 0 in
    Hashtbl.replace table key (n + 1)

  let observe t ~tag ~label =
    bump t.pair_counts (tag, label);
    bump t.tag_counts tag;
    bump t.label_counts label;
    t.total <- t.total + 1

  let count table key = try Hashtbl.find table key with Not_found -> 0

  let score t ~tag ~label =
    let c_gv = count t.pair_counts (tag, label) in
    let c_g = count t.tag_counts tag in
    let c_v = count t.label_counts label in
    if c_g = 0 || c_v = 0 then 0.0
    else begin
      let acc = float_of_int c_gv /. float_of_int c_g in
      let prec = float_of_int c_gv /. float_of_int c_v in
      acc *. prec
    end

  let most_common_label t =
    Hashtbl.fold
      (fun label n best ->
        match best with
        | Some (_, bn) when bn > n -> best
        | Some (bl, bn) when bn = n && String.compare bl label <= 0 -> best
        | Some _ | None -> Some (label, n))
      t.label_counts None
    |> Option.map fst

  let best_cat t tag =
    let candidates =
      Hashtbl.fold
        (fun label n acc -> (label, score t ~tag ~label, n) :: acc)
        t.label_counts []
    in
    let sorted =
      List.sort
        (fun (l1, s1, n1) (l2, s2, n2) ->
          match Float.compare s2 s1 with
          | 0 -> ( match Int.compare n2 n1 with 0 -> String.compare l1 l2 | c -> c)
          | c -> c)
        candidates
    in
    match sorted with
    | (label, s, _) :: _ when s > 0.0 -> Some label
    | (_, _, _) :: _ | [] -> most_common_label t
end

let teacher target_db =
  let tagger = make_tagger target_db in
  {
    Clustered_view_gen.teacher_name = "tgt-class";
    prepare =
      (fun ~table ~h ~label_of ~train ->
        let tbag = Tbag.create () in
        Array.iter
          (fun row ->
            match tag tagger (Clustered_view_gen.feature_of table ~h row) with
            | None -> ()
            | Some g -> Tbag.observe tbag ~tag:g ~label:(label_of row))
          train;
        fun row ->
          match tag tagger (Clustered_view_gen.feature_of table ~h row) with
          | None -> Tbag.most_common_label tbag
          | Some g -> Tbag.best_cat tbag g);
  }

let infer target_db =
  let teacher = teacher target_db in
  {
    Infer.infer_name = "tgt-class";
    infer =
      (fun rng config ~source_table ~matches ->
        if matches = [] then []
        else Clustered_view_gen.generate rng config teacher source_table);
  }
