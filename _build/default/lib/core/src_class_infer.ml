let teacher =
  {
    Clustered_view_gen.teacher_name = "src-class";
    prepare =
      (fun ~table ~h ~label_of ~train ->
        let classifier = Learn.Classifier.create () in
        Array.iter
          (fun row ->
            match Clustered_view_gen.feature_of table ~h row with
            | Learn.Classifier.Missing -> ()
            | feature -> Learn.Classifier.train classifier ~label:(label_of row) feature)
          train;
        fun row ->
          Learn.Classifier.classify classifier (Clustered_view_gen.feature_of table ~h row));
  }

let infer =
  {
    Infer.infer_name = "src-class";
    infer =
      (fun rng config ~source_table ~matches ->
        if matches = [] then []
        else Clustered_view_gen.generate rng config teacher source_table);
  }
