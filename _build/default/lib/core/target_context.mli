(** Target-side contextual matching (paper §3: "it is generally
    straightforward to reverse the role of source and target tables to
    discover matches involving conditions on the target table", and §7
    lists handling views on the target schema as future work).

    ContextMatch is run with the two schemas swapped; the discovered
    matches are then flipped back, so each result pairs a *source base
    attribute* with a *target attribute under a condition on the target
    table* — e.g. matching a combined target item file from separated
    source tables. *)

open Relational

type t = {
  src_table : string;
  src_attr : string;
  tgt_base : string;  (** target base table carrying the condition *)
  tgt_view : string;  (** display name of the conditioned target view *)
  tgt_attr : string;
  condition : Condition.t;  (** condition over the target table *)
  confidence : float;
}

val to_string : t -> string

val run :
  ?config:Config.t ->
  algorithm:[ `Naive | `Src_class | `Tgt_class | `Cluster ] ->
  source:Database.t ->
  target:Database.t ->
  unit ->
  t list * Context_match.result
(** [run ~algorithm ~source ~target ()] returns the target-contextual
    matches plus the raw (swapped) ContextMatch result for inspection.
    Standard (unconditional) matches are included with [condition =
    True]. *)
