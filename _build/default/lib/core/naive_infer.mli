(** NaiveInfer (paper §3.2.1): every categorical attribute yields a
    family of simple views, one per value; under EarlyDisjuncts, a
    family for every partitioning of the values (capped — the partition
    count is the Bell number of the cardinality). *)

val infer : Infer.t

val partitions : 'a list -> limit:int -> 'a list list list
(** All set partitions of a list in a deterministic order, truncated at
    [limit].  Exposed for tests and for the Fig. 15 runtime study. *)

val bell_number : int -> int
(** Number of set partitions of an n-element set (exact for n <= 15). *)
