lib/core/config.ml: Matching Relational
