lib/core/tgt_class_infer.mli: Clustered_view_gen Database Infer Learn Relational
