lib/core/target_context.mli: Condition Config Context_match Database Relational
