lib/core/context_match.mli: Config Database Infer Matching Relational Select_matches View
