lib/core/naive_infer.mli: Infer
