lib/core/config.mli: Matching Relational
