lib/core/target_context.ml: Condition Config Context_match List Matching Printf Relational
