lib/core/src_class_infer.ml: Array Clustered_view_gen Infer Learn
