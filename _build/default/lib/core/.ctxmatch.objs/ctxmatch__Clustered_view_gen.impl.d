lib/core/clustered_view_gen.ml: Array Categorical Config Learn List Relational Schema Stats String Table Value View
