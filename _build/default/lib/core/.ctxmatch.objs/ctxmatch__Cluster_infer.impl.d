lib/core/cluster_infer.ml: Array Clustered_view_gen Float Hashtbl Infer Learn List Option Stats String Textsim
