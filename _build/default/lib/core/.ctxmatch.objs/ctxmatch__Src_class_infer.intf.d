lib/core/src_class_infer.mli: Clustered_view_gen Infer
