lib/core/infer.ml: Condition Config Hashtbl List Matching Relational Stats Table View
