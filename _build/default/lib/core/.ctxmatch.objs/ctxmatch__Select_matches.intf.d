lib/core/select_matches.mli: Matching Relational View
