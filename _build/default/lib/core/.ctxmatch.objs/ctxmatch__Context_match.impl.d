lib/core/context_match.ml: Cluster_infer Config Database Infer List Matching Naive_infer Relational Select_matches Src_class_infer Stats Table Tgt_class_infer Unix View
