lib/core/conjunctive.ml: Condition Config Context_match Database Float Hashtbl Infer List Matching Relational Table View
