lib/core/naive_infer.ml: Array Categorical Config Infer List Relational Table View
