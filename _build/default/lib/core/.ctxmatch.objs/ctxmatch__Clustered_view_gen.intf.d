lib/core/clustered_view_gen.mli: Config Learn Relational Stats Table Value View
