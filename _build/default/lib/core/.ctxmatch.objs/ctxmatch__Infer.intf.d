lib/core/infer.mli: Config Matching Relational Stats Table View
