lib/core/tgt_class_infer.ml: Array Attribute Clustered_view_gen Database Float Hashtbl Infer Int Learn List Option Printf Relational Schema String Table Textsim Value
