lib/core/select_matches.ml: Condition Float Hashtbl List Matching Relational Schema String Table Value View
