lib/core/conjunctive.mli: Config Context_match Database Matching Relational
