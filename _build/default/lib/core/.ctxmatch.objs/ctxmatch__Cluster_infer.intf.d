lib/core/cluster_infer.mli: Clustered_view_gen Infer Stats
