
let kmeans_1d rng ~k xs =
  let distinct = Array.of_list (List.sort_uniq Float.compare (Array.to_list xs)) in
  let n = Array.length distinct in
  if n = 0 then [||]
  else if n <= k then distinct
  else begin
    (* quantile seeding, then Lloyd iterations *)
    let centres =
      Array.init k (fun i ->
          distinct.(min (n - 1) (i * n / k + (n / (2 * k)))))
    in
    let assign x =
      let best = ref 0 and best_d = ref Float.infinity in
      Array.iteri
        (fun i c ->
          let d = Float.abs (x -. c) in
          if d < !best_d then begin
            best := i;
            best_d := d
          end)
        centres;
      !best
    in
    let changed = ref true in
    let iterations = ref 0 in
    while !changed && !iterations < 50 do
      incr iterations;
      changed := false;
      let sums = Array.make k 0.0 and counts = Array.make k 0 in
      Array.iter
        (fun x ->
          let i = assign x in
          sums.(i) <- sums.(i) +. x;
          counts.(i) <- counts.(i) + 1)
        xs;
      Array.iteri
        (fun i count ->
          if count > 0 then begin
            let mean = sums.(i) /. float_of_int count in
            if Float.abs (mean -. centres.(i)) > 1e-9 then begin
              centres.(i) <- mean;
              changed := true
            end
          end
          else
            (* re-seed an empty cluster on a random point *)
            centres.(i) <- xs.(Stats.Rng.int rng (Array.length xs)))
        counts
    done;
    Array.sort Float.compare centres;
    centres
  end

let nearest centres x =
  let best = ref 0 and best_d = ref Float.infinity in
  Array.iteri
    (fun i c ->
      let d = Float.abs (x -. c) in
      if d < !best_d then begin
        best := i;
        best_d := d
      end)
    centres;
  !best

(* k-medoids over 3-gram profiles for text, with a sampled candidate set
   to stay near O(k * n). *)
module Text_clusters = struct
  type t = { medoids : Textsim.Profile.t array }

  let profile_of s = Textsim.Profile.of_strings [ s ]

  let distance a b = 1.0 -. Textsim.Profile.cosine a b

  let assign t p =
    let best = ref 0 and best_d = ref Float.infinity in
    Array.iteri
      (fun i m ->
        let d = distance p m in
        if d < !best_d then begin
          best := i;
          best_d := d
        end)
      t.medoids;
    !best

  let build rng ~k strings =
    let distinct = Array.of_list (List.sort_uniq String.compare (Array.to_list strings)) in
    let n = Array.length distinct in
    if n = 0 then { medoids = [||] }
    else begin
      let k = min k n in
      (* greedy farthest-point seeding from a random start *)
      let profiles = Array.map profile_of distinct in
      let first = Stats.Rng.int rng n in
      let chosen = ref [ first ] in
      while List.length !chosen < k do
        let best = ref (-1) and best_d = ref neg_infinity in
        Array.iteri
          (fun i p ->
            if not (List.mem i !chosen) then begin
              let d =
                List.fold_left
                  (fun acc j -> Float.min acc (distance p profiles.(j)))
                  Float.infinity !chosen
              in
              if d > !best_d then begin
                best := i;
                best_d := d
              end
            end)
          profiles;
        if !best < 0 then chosen := first :: !chosen (* all identical *)
        else chosen := !best :: !chosen
      done;
      { medoids = Array.of_list (List.rev_map (fun i -> profiles.(i)) !chosen) }
    end
end

let teacher =
  {
    Clustered_view_gen.teacher_name = "cluster";
    prepare =
      (fun ~table ~h ~label_of ~train ->
        (* cluster count = number of labels in the training rows *)
        let labels =
          Array.to_list train |> List.map label_of |> List.sort_uniq String.compare
        in
        let k = max 2 (List.length labels) in
        let rng = Stats.Rng.create (Hashtbl.hash (h, Array.length train)) in
        let features = Array.map (Clustered_view_gen.feature_of table ~h) train in
        let numbers =
          Array.to_list features
          |> List.filter_map (function
               | Learn.Classifier.Number x -> Some x
               | Learn.Classifier.Text _ | Learn.Classifier.Missing -> None)
          |> Array.of_list
        in
        let texts =
          Array.to_list features
          |> List.filter_map (function
               | Learn.Classifier.Text s -> Some s
               | Learn.Classifier.Number _ | Learn.Classifier.Missing -> None)
          |> Array.of_list
        in
        let centres = if Array.length numbers > 0 then kmeans_1d rng ~k numbers else [||] in
        let text_clusters =
          if Array.length texts > 0 then Text_clusters.build rng ~k texts
          else { Text_clusters.medoids = [||] }
        in
        let cluster_of feature =
          match feature with
          | Learn.Classifier.Missing -> None
          | Learn.Classifier.Number x ->
            if Array.length centres = 0 then None else Some (`Num (nearest centres x))
          | Learn.Classifier.Text s ->
            if Array.length text_clusters.Text_clusters.medoids = 0 then None
            else Some (`Text (Text_clusters.assign text_clusters (Text_clusters.profile_of s)))
        in
        (* tag each cluster with its majority training label *)
        let majority = Hashtbl.create 16 in
        Array.iteri
          (fun i feature ->
            match cluster_of feature with
            | None -> ()
            | Some cluster ->
              let label = label_of train.(i) in
              let counts =
                match Hashtbl.find_opt majority cluster with
                | Some counts -> counts
                | None ->
                  let counts = Hashtbl.create 4 in
                  Hashtbl.add majority cluster counts;
                  counts
              in
              let c = try Hashtbl.find counts label with Not_found -> 0 in
              Hashtbl.replace counts label (c + 1))
          features;
        let label_of_cluster cluster =
          match Hashtbl.find_opt majority cluster with
          | None -> None
          | Some counts ->
            Hashtbl.fold
              (fun label n best ->
                match best with
                | Some (_, bn) when bn > n -> best
                | Some (bl, bn) when bn = n && String.compare bl label <= 0 -> best
                | Some _ | None -> Some (label, n))
              counts None
            |> Option.map fst
        in
        fun row ->
          match cluster_of (Clustered_view_gen.feature_of table ~h row) with
          | None -> None
          | Some cluster -> label_of_cluster cluster);
  }

let infer =
  {
    Infer.infer_name = "cluster";
    infer =
      (fun rng config ~source_table ~matches ->
        if matches = [] then []
        else Clustered_view_gen.generate rng config teacher source_table);
  }
