open Relational

(* Enumerate set partitions by inserting each element either into one of
   the existing blocks or as a new block (restricted-growth order). *)
let partitions items ~limit =
  let count = ref 0 in
  let results = ref [] in
  let rec go remaining blocks =
    if !count >= limit then ()
    else
      match remaining with
      | [] ->
        incr count;
        results := List.rev_map List.rev blocks :: !results
      | item :: rest ->
        let rec insert prefix = function
          | [] -> ()
          | block :: others ->
            if !count < limit then begin
              go rest (List.rev_append prefix ((item :: block) :: others));
              insert (block :: prefix) others
            end
        in
        insert [] blocks;
        if !count < limit then go rest (blocks @ [ [ item ] ])
  in
  (match items with [] -> () | first :: rest -> go rest [ [ first ] ]);
  List.rev !results

let bell_number n =
  (* Bell triangle. *)
  if n <= 0 then 1
  else begin
    let prev = ref [| 1 |] in
    for _ = 2 to n do
      let row = Array.make (Array.length !prev + 1) 0 in
      row.(0) <- !prev.(Array.length !prev - 1);
      Array.iteri (fun i v -> row.(i + 1) <- row.(i) + v) !prev;
      prev := row
    done;
    !prev.(Array.length !prev - 1)
  end

let infer =
  {
    Infer.infer_name = "naive";
    infer =
      (fun _rng (config : Config.t) ~source_table ~matches ->
        if matches = [] then []
        else begin
          let categorical =
            Categorical.categorical_attributes ~params:config.Config.categorical_params
              source_table
          in
          List.concat_map
            (fun l ->
              let values = Table.distinct_values source_table l in
              let simple = View.partition_family source_table l in
              if not config.Config.early_disjuncts then [ simple ]
              else begin
                (* Every partitioning of the values (§3.2.1), capped.  The
                   all-singletons partition duplicates [simple] and is
                   filtered out by condition-level dedup downstream. *)
                let families =
                  partitions values ~limit:config.Config.max_naive_partitions
                  |> List.filter (fun blocks -> List.exists (fun b -> List.length b > 1) blocks)
                  |> List.map (fun blocks -> View.family_of_values source_table l blocks)
                in
                simple :: families
              end)
            categorical
        end);
  }
