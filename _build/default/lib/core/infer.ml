open Relational

type t = {
  infer_name : string;
  infer :
    Stats.Rng.t ->
    Config.t ->
    source_table:Table.t ->
    matches:Matching.Schema_match.t list ->
    View.family list;
}

let views_of_families families =
  let seen = Hashtbl.create 32 in
  List.concat_map (fun f -> f.View.views) families
  |> List.filter (fun v ->
         let key = Condition.to_string (Condition.normalize (View.condition v)) in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end)
