(** Iterated search for conjunctive contexts (paper §3.5).

    Heuristic: a high-quality k-condition has a high-quality
    (k-1)-sub-condition.  Stage i+1 re-runs ContextMatch with the views
    selected at stage i materialised as base tables, partitioning only
    on attributes not already fixed by the view's condition; conditions
    compose by conjunction. *)

open Relational

type stage = {
  stage_index : int;  (** 1 = simple conditions, 2 = 2-conditions, ... *)
  result : Context_match.result;
}

val run :
  ?config:Config.t ->
  ?stages:int ->
  algorithm:[ `Naive | `Src_class | `Tgt_class | `Cluster ] ->
  source:Database.t ->
  target:Database.t ->
  unit ->
  stage list * Matching.Schema_match.t list
(** [run ~algorithm ~source ~target ()] performs up to [stages]
    (default 2) iterations and returns the per-stage results plus the
    final combined match list, in which stage-i matches carry
    i-attribute conjunctive conditions.  Later stages only replace a
    stage-(i-1) match when they found a strictly improving refinement;
    otherwise the earlier match is kept.  The improvement threshold
    omega is quartered at each stage, since refinements of an
    already-specialised view have intrinsically smaller increments. *)
