(** ClusteredViewGen (paper Fig. 6): find well-clustered view families.

    For a categorical attribute l and a non-categorical attribute h, a
    classifier C_h mapping h-values to l-values is trained on one part
    of the sample and tested on the rest.  If the held-out accuracy is
    significantly better than the majority-class null hypothesis
    (§3.2.2), the family of views partitioning the table on l is
    well-clustered and becomes a candidate for contextual matching.

    Under EarlyDisjuncts (§3.3) the most-confused label pairs are merged
    iteratively, producing families whose views carry simple-disjunctive
    conditions (l IN {v, v'}). *)

open Relational

(** How a classifier for (h -> label) is obtained.  SrcClassInfer trains
    on the source values of h; TgtClassInfer tags h-values with the most
    similar target column and learns tag -> label associations. *)
type teacher = {
  teacher_name : string;
  prepare :
    table:Table.t ->
    h:string ->
    label_of:(Table.row -> string) ->
    train:Table.row array ->
    Table.row ->
    string option;
      (** [prepare ~table ~h ~label_of ~train] builds a predictor from
          the training rows; the predictor maps a row to a predicted
          label (None = abstain). *)
}

type verdict = {
  h_attr : string;
  l_attr : string;
  quality : float;  (** micro-averaged F1 on held-out rows *)
  null_likelihood : float;
  significant : bool;
  confusion : Stats.Confusion.t;
}

val feature_of : Table.t -> h:string -> Table.row -> Learn.Classifier.feature
(** The classification feature of row's h-cell: text for strings/bools,
    number for ints/floats, missing for nulls. *)

val evaluate :
  Stats.Rng.t ->
  Config.t ->
  teacher ->
  Table.t ->
  h:string ->
  l:string ->
  label_map:(Value.t -> string) ->
  verdict option
(** One train/test round.  [label_map] renders the l-value of a row into
    its (possibly merged) classification label.  [None] when the table
    is too small to split or l has a single value. *)

val best_verdict :
  Stats.Rng.t -> Config.t -> teacher -> Table.t -> l:string -> verdict option
(** Best verdict for l over all non-categorical attributes h (h <> l);
    [None] when no h yields a significant verdict. *)

val merged_families :
  Stats.Rng.t -> Config.t -> teacher -> Table.t -> l:string -> h:string -> View.family list
(** The EarlyDisjuncts merge loop seeded at (h, l): repeatedly merge the
    most-confused label pair, re-evaluate, and emit a view family for
    each merged grouping that remains significant. *)

val generate : Stats.Rng.t -> Config.t -> teacher -> Table.t -> View.family list
(** Candidate view families of a table: for every categorical l, the
    simple family when some h classifies it significantly, plus (under
    EarlyDisjuncts) the merged disjunctive families. *)
