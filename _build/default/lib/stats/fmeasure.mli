(** Precision / recall / F-measure over sets of discrete items.

    Used by the evaluation harness (paper §5, "Evaluating Accuracy"):
    accuracy is the percentage of correct matches found (i.e. recall)
    and precision the percentage of found matches that are correct. *)

type counts = { true_positives : int; found : int; expected : int }

val counts : equal:('a -> 'a -> bool) -> expected:'a list -> found:'a list -> counts
(** Set-style counting: an expected item counts as a true positive when
    at least one found item is [equal] to it; [found] duplicates are
    counted once per distinct found item. *)

val precision : counts -> float
(** TP / found; 1.0 when nothing was found and nothing expected, 0.0 when
    found is empty but something was expected. *)

val recall : counts -> float
(** TP / expected (the paper's "accuracy"); 1.0 when nothing expected. *)

val f_beta : ?beta:float -> counts -> float
(** F_beta of precision and recall; beta defaults to 1. *)

val f1 : counts -> float

val of_rates : precision:float -> recall:float -> float
(** Harmonic mean of two rates (F1); 0.0 when both are 0. *)
