(** Descriptive statistics over float samples.

    Used by the numeric instance matcher (compare column distributions)
    and by the score-normalisation step that converts raw matcher scores
    into confidences. *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** population variance (divides by n) *)
  stddev : float;
  min : float;
  max : float;
}

val empty_summary : summary
(** Summary of zero observations: all fields 0 (min/max are nan). *)

val summarize : float array -> summary
(** Single-pass Welford summary.  Stable for long, large-magnitude
    samples. *)

val summarize_list : float list -> summary

val mean : float array -> float
(** 0.0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0.0 on arrays of length < 2. *)

val median : float array -> float
(** Median (average of middle two for even length).  Does not mutate the
    input.  0.0 on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between
    closest ranks. *)

val sum : float array -> float
(** Kahan-compensated sum. *)
