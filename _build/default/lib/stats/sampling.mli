(** Train/test splitting and sampling of row indices.

    ClusteredViewGen (paper Fig. 6) evaluates a classifier on a held-out
    split of the sample rows; the experiments average over many random
    partitions (paper §5: "between 8 and 200 random partitions"). *)

val split_indices : Rng.t -> n:int -> train_fraction:float -> int array * int array
(** [split_indices rng ~n ~train_fraction] shuffles [0..n-1] and cuts it
    into (train, test).  Guarantees at least one element on each side
    when [n >= 2].  Raises [Invalid_argument] when the fraction is
    outside (0, 1). *)

val split : Rng.t -> train_fraction:float -> 'a array -> 'a array * 'a array
(** Split an array of items rather than indices. *)

val sample_without_replacement : Rng.t -> k:int -> 'a array -> 'a array
(** [k] distinct elements (all of them if [k >= length]). *)

val bootstrap : Rng.t -> k:int -> 'a array -> 'a array
(** [k] elements sampled with replacement.  Raises on an empty input with
    [k > 0]. *)

val stratified_split :
  Rng.t -> label:('a -> string) -> train_fraction:float -> 'a array -> 'a array * 'a array
(** Per-label split: every label with >= 2 occurrences contributes at
    least one item to each side, which keeps rare categorical values
    visible to both training and testing. *)
