(** Confusion matrices for single-label classification.

    ClusteredViewGen (paper §3.2.2) evaluates a classifier on held-out
    data and needs (a) the micro-averaged F-measure of the predictions
    and (b) the error pairs (truth, predicted) that drive the
    early-disjunct merging loop (paper §3.3). *)

type t
(** A confusion matrix over string labels.  Mutable accumulator. *)

val create : unit -> t

val observe : t -> truth:string -> predicted:string -> unit
(** Record one classification outcome. *)

val total : t -> int
(** Number of observations recorded. *)

val correct : t -> int
(** Number of observations with [truth = predicted]. *)

val accuracy : t -> float
(** [correct / total]; 0.0 when empty. *)

val labels : t -> string list
(** All labels seen (as truth or prediction), sorted. *)

val count : t -> truth:string -> predicted:string -> int

val truth_count : t -> string -> int
(** Number of observations whose truth is the given label. *)

val predicted_count : t -> string -> int

val per_class_precision : t -> string -> float
(** TP / predicted-count for a label; 0.0 when never predicted. *)

val per_class_recall : t -> string -> float
(** TP / truth-count for a label; 0.0 when the label never occurs. *)

val micro_f : ?beta:float -> t -> float
(** Micro-averaged F_beta.  For single-label problems micro-precision =
    micro-recall = accuracy, so this equals accuracy for any beta; kept
    general for documentation parity with the paper. *)

val macro_f : ?beta:float -> t -> float
(** Unweighted mean of per-class F_beta. *)

val error_pairs : t -> ((string * string) * int) list
(** Misclassification pairs with counts, truth/prediction order
    normalised so that [(v, v')] and [(v', v)] are merged (paper §3.3:
    "false positives and false negatives are not distinguished").
    Sorted by decreasing count, ties broken lexicographically. *)

val normalized_error_pairs : t -> ((string * string) * float) list
(** Like {!error_pairs} but each count is divided by the combined truth
    frequency of the two labels, per §3.3 ("after normalizing for the
    frequency of v and v'").  Sorted by decreasing normalised weight. *)
