(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    experiment is reproducible from an integer seed.  The generator is
    splitmix64, which has a 64-bit state, passes BigCrush, and supports
    cheap splitting into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via the Box–Muller transform. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element.  Raises [Invalid_argument] on empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniformly chosen element of a non-empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle : t -> 'a array -> 'a array
(** Non-destructive shuffle. *)
