module Pair_map = Map.Make (struct
  type t = string * string

  let compare = compare
end)

module String_map = Map.Make (String)

type t = {
  mutable cells : int Pair_map.t;
  mutable truths : int String_map.t;
  mutable predictions : int String_map.t;
  mutable total : int;
  mutable correct : int;
}

let create () =
  {
    cells = Pair_map.empty;
    truths = String_map.empty;
    predictions = String_map.empty;
    total = 0;
    correct = 0;
  }

let bump map key = String_map.update key (function None -> Some 1 | Some n -> Some (n + 1)) map

let observe t ~truth ~predicted =
  t.cells <-
    Pair_map.update (truth, predicted)
      (function None -> Some 1 | Some n -> Some (n + 1))
      t.cells;
  t.truths <- bump t.truths truth;
  t.predictions <- bump t.predictions predicted;
  t.total <- t.total + 1;
  if String.equal truth predicted then t.correct <- t.correct + 1

let total t = t.total
let correct t = t.correct

let accuracy t = if t.total = 0 then 0.0 else float_of_int t.correct /. float_of_int t.total

let labels t =
  let add map acc = String_map.fold (fun k _ acc -> k :: acc) map acc in
  add t.truths [] |> add t.predictions |> List.sort_uniq String.compare

let count t ~truth ~predicted =
  match Pair_map.find_opt (truth, predicted) t.cells with None -> 0 | Some n -> n

let truth_count t label =
  match String_map.find_opt label t.truths with None -> 0 | Some n -> n

let predicted_count t label =
  match String_map.find_opt label t.predictions with None -> 0 | Some n -> n

let per_class_precision t label =
  let denom = predicted_count t label in
  if denom = 0 then 0.0
  else float_of_int (count t ~truth:label ~predicted:label) /. float_of_int denom

let per_class_recall t label =
  let denom = truth_count t label in
  if denom = 0 then 0.0
  else float_of_int (count t ~truth:label ~predicted:label) /. float_of_int denom

let f_beta ~beta ~precision ~recall =
  let b2 = beta *. beta in
  let denom = (b2 *. precision) +. recall in
  if denom <= 0.0 then 0.0 else (1.0 +. b2) *. precision *. recall /. denom

let micro_f ?(beta = 1.0) t =
  (* Single-label: micro P = micro R = accuracy. *)
  let a = accuracy t in
  f_beta ~beta ~precision:a ~recall:a

let macro_f ?(beta = 1.0) t =
  match labels t with
  | [] -> 0.0
  | ls ->
    let sum =
      List.fold_left
        (fun acc label ->
          acc
          +. f_beta ~beta ~precision:(per_class_precision t label)
               ~recall:(per_class_recall t label))
        0.0 ls
    in
    sum /. float_of_int (List.length ls)

let error_pairs t =
  let merged =
    Pair_map.fold
      (fun (truth, predicted) n acc ->
        if String.equal truth predicted then acc
        else begin
          let key = if String.compare truth predicted <= 0 then (truth, predicted) else (predicted, truth) in
          Pair_map.update key (function None -> Some n | Some m -> Some (m + n)) acc
        end)
      t.cells Pair_map.empty
  in
  Pair_map.bindings merged
  |> List.sort (fun (k1, n1) (k2, n2) ->
         match compare n2 n1 with 0 -> compare k1 k2 | c -> c)

let normalized_error_pairs t =
  error_pairs t
  |> List.map (fun ((v, v'), n) ->
         let freq = truth_count t v + truth_count t v' in
         let w = if freq = 0 then 0.0 else float_of_int n /. float_of_int freq in
         ((v, v'), w))
  |> List.sort (fun (k1, w1) (k2, w2) ->
         match Float.compare w2 w1 with 0 -> compare k1 k2 | c -> c)
