lib/stats/fmeasure.mli:
