lib/stats/sampling.ml: Array Float Hashtbl List Rng String
