lib/stats/confusion.mli:
