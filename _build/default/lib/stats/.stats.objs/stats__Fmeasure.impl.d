lib/stats/fmeasure.ml: List
