lib/stats/descriptive.mli:
