lib/stats/distribution.mli:
