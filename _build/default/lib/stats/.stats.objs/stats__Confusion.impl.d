lib/stats/confusion.ml: Float List Map String
