lib/stats/rng.mli:
