type counts = { true_positives : int; found : int; expected : int }

let dedup equal items =
  List.fold_left
    (fun acc item -> if List.exists (equal item) acc then acc else item :: acc)
    [] items
  |> List.rev

let counts ~equal ~expected ~found =
  let found = dedup equal found in
  let expected = dedup equal expected in
  let true_positives =
    List.length (List.filter (fun e -> List.exists (equal e) found) expected)
  in
  { true_positives; found = List.length found; expected = List.length expected }

let precision c =
  if c.found = 0 then if c.expected = 0 then 1.0 else 0.0
  else float_of_int c.true_positives /. float_of_int c.found

let recall c =
  if c.expected = 0 then 1.0 else float_of_int c.true_positives /. float_of_int c.expected

let of_rates ~precision ~recall =
  if precision +. recall <= 0.0 then 0.0
  else 2.0 *. precision *. recall /. (precision +. recall)

let f_beta ?(beta = 1.0) c =
  let p = precision c and r = recall c in
  let b2 = beta *. beta in
  let denom = (b2 *. p) +. r in
  if denom <= 0.0 then 0.0 else (1.0 +. b2) *. p *. r /. denom

let f1 c = f_beta ~beta:1.0 c
