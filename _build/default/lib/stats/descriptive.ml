type summary = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
}

let empty_summary =
  { n = 0; mean = 0.0; variance = 0.0; stddev = 0.0; min = Float.nan; max = Float.nan }

let summarize xs =
  let n = Array.length xs in
  if n = 0 then empty_summary
  else begin
    (* Welford's online algorithm. *)
    let mean = ref 0.0 and m2 = ref 0.0 in
    let mn = ref xs.(0) and mx = ref xs.(0) in
    Array.iteri
      (fun i x ->
        let count = float_of_int (i + 1) in
        let delta = x -. !mean in
        mean := !mean +. (delta /. count);
        m2 := !m2 +. (delta *. (x -. !mean));
        if x < !mn then mn := x;
        if x > !mx then mx := x)
      xs;
    let variance = !m2 /. float_of_int n in
    { n; mean = !mean; variance; stddev = sqrt variance; min = !mn; max = !mx }
  end

let summarize_list l = summarize (Array.of_list l)

let mean xs = (summarize xs).mean

let stddev xs = if Array.length xs < 2 then 0.0 else (summarize xs).stddev

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    if p <= 0.0 then sorted.(0)
    else if p >= 100.0 then sorted.(n - 1)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. Float.floor rank in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
  end

let median xs = percentile xs 50.0

let sum xs =
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total
