type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     bounds used in this library (all far below 2^32).  Shift by 2 so the
     value fits OCaml's 63-bit native int and stays non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits mapped onto [0,1). *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t arr =
  let copy = Array.copy arr in
  shuffle_in_place t copy;
  copy
