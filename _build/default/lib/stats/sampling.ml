let split_indices rng ~n ~train_fraction =
  if train_fraction <= 0.0 || train_fraction >= 1.0 then
    invalid_arg "Sampling.split_indices: train_fraction outside (0,1)";
  let idx = Array.init n (fun i -> i) in
  Rng.shuffle_in_place rng idx;
  let cut = int_of_float (Float.round (train_fraction *. float_of_int n)) in
  let cut = if n >= 2 then max 1 (min (n - 1) cut) else cut in
  (Array.sub idx 0 cut, Array.sub idx cut (n - cut))

let split rng ~train_fraction items =
  let train_idx, test_idx = split_indices rng ~n:(Array.length items) ~train_fraction in
  (Array.map (fun i -> items.(i)) train_idx, Array.map (fun i -> items.(i)) test_idx)

let sample_without_replacement rng ~k items =
  let n = Array.length items in
  if k >= n then Rng.shuffle rng items
  else begin
    let shuffled = Rng.shuffle rng items in
    Array.sub shuffled 0 (max 0 k)
  end

let bootstrap rng ~k items =
  if k > 0 && Array.length items = 0 then invalid_arg "Sampling.bootstrap: empty input";
  Array.init k (fun _ -> Rng.pick rng items)

let stratified_split rng ~label ~train_fraction items =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun item ->
      let l = label item in
      let group = try Hashtbl.find table l with Not_found -> [] in
      Hashtbl.replace table l (item :: group))
    items;
  let train = ref [] and test = ref [] in
  let groups = Hashtbl.fold (fun l g acc -> (l, g) :: acc) table [] in
  let groups = List.sort (fun (l1, _) (l2, _) -> String.compare l1 l2) groups in
  List.iter
    (fun (_, group) ->
      let group = Array.of_list group in
      if Array.length group < 2 then
        (* A singleton label goes to training: the classifier must at
           least see the label to be able to predict it. *)
        Array.iter (fun item -> train := item :: !train) group
      else begin
        let tr, te = split rng ~train_fraction group in
        Array.iter (fun item -> train := item :: !train) tr;
        Array.iter (fun item -> test := item :: !test) te
      end)
    groups;
  (Array.of_list (List.rev !train), Array.of_list (List.rev !test))
