(** Probability distributions used by the matcher and the significance
    tests of contextual matching.

    The normal CDF [phi] converts raw matcher scores into confidences
    (paper §2.3) and drives the binomial-null significance test of
    ClusteredViewGen (paper §3.2.2). *)

val erf : float -> float
(** Error function, Abramowitz–Stegun 7.1.26 rational approximation
    (|error| < 1.5e-7, ample for score normalisation). *)

val erfc : float -> float
(** Complementary error function. *)

val normal_pdf : ?mu:float -> ?sigma:float -> float -> float
(** Density of N(mu, sigma); defaults to the standard normal. *)

val phi : float -> float
(** Standard normal CDF. *)

val normal_cdf : mu:float -> sigma:float -> float -> float
(** CDF of N(mu, sigma).  Requires [sigma > 0]. *)

val phi_inv : float -> float
(** Quantile function of the standard normal (Acklam's algorithm, refined
    with one Halley step).  Defined on (0, 1). *)

val binomial_mean : n:int -> p:float -> float
(** Mean [n*p] of Binomial(n, p). *)

val binomial_stddev : n:int -> p:float -> float
(** Standard deviation [sqrt (n*p*(1-p))]. *)

val binomial_tail_normal : n:int -> p:float -> successes:int -> float
(** [binomial_tail_normal ~n ~p ~successes] approximates
    P(X >= successes) for X ~ Binomial(n, p) with the normal
    approximation (continuity-corrected).  This is the likelihood of the
    null hypothesis in the ClusteredViewGen significance test. *)

val z_score : mu:float -> sigma:float -> float -> float
(** [(x - mu) / sigma]; returns 0 when [sigma] is not positive. *)
