type t = { q : int; counts : (string, int) Hashtbl.t; mutable total : int }

let create q = { q; counts = Hashtbl.create 256; total = 0 }

let add t s =
  List.iter
    (fun gram ->
      let n = try Hashtbl.find t.counts gram with Not_found -> 0 in
      Hashtbl.replace t.counts gram (n + 1);
      t.total <- t.total + 1)
    (Tokenize.qgrams t.q s)

let of_strings ?(q = 3) strings =
  let t = create q in
  List.iter (add t) strings;
  t

let of_strings_array ?(q = 3) strings =
  let t = create q in
  Array.iter (add t) strings;
  t

let gram_count t = Hashtbl.length t.counts
let total t = t.total

let to_weighted_bag t =
  if t.total = 0 then []
  else begin
    let denom = float_of_int t.total in
    Hashtbl.fold (fun gram n acc -> (gram, float_of_int n /. denom) :: acc) t.counts []
    |> List.sort (fun (g1, _) (g2, _) -> String.compare g1 g2)
  end

let cosine a b =
  if a.total = 0 || b.total = 0 then 0.0
  else begin
    (* Iterate the smaller table for the dot product. *)
    let small, large = if Hashtbl.length a.counts <= Hashtbl.length b.counts then (a, b) else (b, a) in
    let dot = ref 0.0 in
    Hashtbl.iter
      (fun gram n ->
        match Hashtbl.find_opt large.counts gram with
        | None -> ()
        | Some m ->
          dot :=
            !dot
            +. (float_of_int n /. float_of_int small.total)
               *. (float_of_int m /. float_of_int large.total))
      small.counts;
    let norm t =
      sqrt
        (Hashtbl.fold
           (fun _ n acc ->
             let f = float_of_int n /. float_of_int t.total in
             acc +. (f *. f))
           t.counts 0.0)
    in
    let na = norm a and nb = norm b in
    if na = 0.0 || nb = 0.0 then 0.0 else !dot /. (na *. nb)
  end

let jaccard a b =
  let ca = Hashtbl.length a.counts and cb = Hashtbl.length b.counts in
  if ca = 0 && cb = 0 then 1.0
  else begin
    let inter = ref 0 in
    let small, large = if ca <= cb then (a, b) else (b, a) in
    Hashtbl.iter
      (fun gram _ -> if Hashtbl.mem large.counts gram then incr inter)
      small.counts;
    let union = ca + cb - !inter in
    if union = 0 then 0.0 else float_of_int !inter /. float_of_int union
  end
