lib/textsim/simmetrics.ml: Array List Map Set String Tokenize
