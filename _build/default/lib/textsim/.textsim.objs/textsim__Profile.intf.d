lib/textsim/profile.mli:
