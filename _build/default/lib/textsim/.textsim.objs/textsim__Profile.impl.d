lib/textsim/profile.ml: Array Hashtbl List String Tokenize
