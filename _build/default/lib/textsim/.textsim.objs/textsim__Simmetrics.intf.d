lib/textsim/simmetrics.mli:
