lib/textsim/tokenize.mli:
