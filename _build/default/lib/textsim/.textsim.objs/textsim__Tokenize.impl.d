lib/textsim/tokenize.ml: Buffer Char List String
