let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let normalize s =
  let buf = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      if is_alnum c then begin
        if !pending_space && Buffer.length buf > 0 then Buffer.add_char buf ' ';
        pending_space := false;
        Buffer.add_char buf (Char.lowercase_ascii c)
      end
      else pending_space := true)
    s;
  Buffer.contents buf

let words s =
  normalize s |> String.split_on_char ' ' |> List.filter (fun w -> w <> "")

let qgrams q s =
  if q <= 0 then invalid_arg "Tokenize.qgrams: q must be positive";
  let s = normalize s in
  if String.length s = 0 then []
  else begin
    let pad = String.make (q - 1) '#' in
    let padded = pad ^ s ^ pad in
    let n = String.length padded in
    let rec collect i acc =
      if i + q > n then List.rev acc else collect (i + 1) (String.sub padded i q :: acc)
    in
    collect 0 []
  end

let trigrams s = qgrams 3 s

let name_tokens s =
  let n = String.length s in
  let buf = Buffer.create n in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := String.lowercase_ascii (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  let is_upper c = c >= 'A' && c <= 'Z' in
  let is_lower c = c >= 'a' && c <= 'z' in
  String.iteri
    (fun i c ->
      if not (is_alnum c) then flush ()
      else begin
        (* camelCase boundary: lower followed by upper, or an upper run
           followed by a lower ("HTTPServer" -> "http" "server"). *)
        if i > 0 && is_upper c && is_lower s.[i - 1] then flush ()
        else if
          i > 0 && i + 1 < n && is_upper c && is_upper s.[i - 1] && is_lower s.[i + 1]
        then flush ();
        Buffer.add_char buf c
      end)
    s;
  flush ();
  List.rev !tokens
