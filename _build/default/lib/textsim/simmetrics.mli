(** String and token-set similarity metrics.  All return values in
    [0, 1], 1 meaning identical. *)

val levenshtein : string -> string -> int
(** Edit distance (insert/delete/substitute, unit costs). *)

val levenshtein_similarity : string -> string -> float
(** [1 - distance / max-length]; 1.0 for two empty strings. *)

val jaro : string -> string -> float

val jaro_winkler : ?prefix_scale:float -> string -> string -> float
(** Jaro with Winkler's common-prefix boost (scale default 0.1, prefix
    capped at 4). *)

val jaccard : string list -> string list -> float
(** Set Jaccard of token lists; 1.0 for two empty lists. *)

val dice : string list -> string list -> float
(** Sørensen–Dice coefficient over token sets. *)

val overlap : string list -> string list -> float
(** Overlap coefficient: |A∩B| / min(|A|,|B|). *)

val cosine_bags : (string * float) list -> (string * float) list -> float
(** Cosine of sparse weighted bags (e.g. q-gram frequency profiles). *)

val name_similarity : string -> string -> float
(** Similarity of two schema identifiers: max of Jaro-Winkler on the
    normalised strings and token-set Jaccard of {!Tokenize.name_tokens},
    with containment credit.  Used by the name matcher. *)
