(** Tokenizers used by the instance matchers and the naive Bayes
    classifier (paper §3.2.3: "values tokenized into 3-grams"). *)

val normalize : string -> string
(** Lowercase; collapse runs of non-alphanumerics into single spaces;
    trim. *)

val words : string -> string list
(** Whitespace-separated tokens of the normalised string. *)

val qgrams : int -> string -> string list
(** [qgrams q s]: all q-grams of the normalised string, padded with
    [q-1] leading/trailing ['#'] marks so that short strings still
    produce grams.  The empty string yields no grams. *)

val trigrams : string -> string list
(** [qgrams 3]. *)

val name_tokens : string -> string list
(** Tokens of a schema identifier: splits on '_', '-', '.', spaces, and
    camel-case boundaries, lowercased.  ["ItemType"] -> ["item";"type"]. *)
