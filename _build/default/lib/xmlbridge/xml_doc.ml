type t =
  | Element of { name : string; attrs : (string * string) list; children : t list }
  | Text of string

exception Parse_error of { position : int; message : string }

let fail position message = raise (Parse_error { position; message })

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

(* Decode &amp; &lt; &gt; &quot; &apos; and numeric references (ASCII
   range only; others are passed through as '?'). *)
let decode_entities input =
  let n = String.length input in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then ()
    else if input.[i] <> '&' then begin
      Buffer.add_char buf input.[i];
      go (i + 1)
    end
    else begin
      match String.index_from_opt input i ';' with
      | None -> fail i "unterminated entity reference"
      | Some stop ->
        let entity = String.sub input (i + 1) (stop - i - 1) in
        (match entity with
        | "amp" -> Buffer.add_char buf '&'
        | "lt" -> Buffer.add_char buf '<'
        | "gt" -> Buffer.add_char buf '>'
        | "quot" -> Buffer.add_char buf '"'
        | "apos" -> Buffer.add_char buf '\''
        | _ when String.length entity > 1 && entity.[0] = '#' ->
          let code =
            if entity.[1] = 'x' || entity.[1] = 'X' then
              int_of_string_opt ("0x" ^ String.sub entity 2 (String.length entity - 2))
            else int_of_string_opt (String.sub entity 1 (String.length entity - 1))
          in
          (match code with
          | Some c when c >= 0 && c < 128 -> Buffer.add_char buf (Char.chr c)
          | Some _ -> Buffer.add_char buf '?'
          | None -> fail i "malformed character reference")
        | _ -> fail i (Printf.sprintf "unknown entity &%s;" entity));
        go (stop + 1)
    end
  in
  go 0;
  Buffer.contents buf

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let starts_with prefix =
    let l = String.length prefix in
    !pos + l <= n && String.sub input !pos l = prefix
  in
  let skip_spaces () = while !pos < n && is_space input.[!pos] do incr pos done in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail !pos (Printf.sprintf "expected %c" c)
  in
  let read_name () =
    let start = !pos in
    while !pos < n && is_name_char input.[!pos] do incr pos done;
    if !pos = start then fail !pos "expected a name";
    String.sub input start (!pos - start)
  in
  let skip_until marker =
    let rec go i =
      if i + String.length marker > n then fail !pos "unterminated construct"
      else if String.sub input i (String.length marker) = marker then
        pos := i + String.length marker
      else go (i + 1)
    in
    go !pos
  in
  let rec skip_misc () =
    skip_spaces ();
    if starts_with "<!--" then begin
      pos := !pos + 4;
      skip_until "-->";
      skip_misc ()
    end
    else if starts_with "<?" then begin
      pos := !pos + 2;
      skip_until "?>";
      skip_misc ()
    end
    else if starts_with "<!DOCTYPE" then begin
      pos := !pos + 9;
      skip_until ">";
      skip_misc ()
    end
  in
  let read_attr_value () =
    match peek () with
    | Some (('"' | '\'') as quote) ->
      incr pos;
      let start = !pos in
      (match String.index_from_opt input start quote with
      | None -> fail start "unterminated attribute value"
      | Some stop ->
        pos := stop + 1;
        decode_entities (String.sub input start (stop - start)))
    | _ -> fail !pos "expected quoted attribute value"
  in
  let rec read_element () =
    expect '<';
    let name = read_name () in
    let rec read_attrs acc =
      skip_spaces ();
      match peek () with
      | Some '>' ->
        incr pos;
        let children = read_children name [] in
        Element { name; attrs = List.rev acc; children }
      | Some '/' ->
        incr pos;
        expect '>';
        Element { name; attrs = List.rev acc; children = [] }
      | Some c when is_name_char c ->
        let attr_name = read_name () in
        skip_spaces ();
        expect '=';
        skip_spaces ();
        let value = read_attr_value () in
        read_attrs ((attr_name, value) :: acc)
      | _ -> fail !pos "malformed tag"
    in
    read_attrs []
  and read_children parent acc =
    if !pos >= n then fail !pos (Printf.sprintf "unterminated element %s" parent)
    else if starts_with "</" then begin
      pos := !pos + 2;
      let closing = read_name () in
      skip_spaces ();
      expect '>';
      if closing <> parent then
        fail !pos (Printf.sprintf "mismatched closing tag %s (expected %s)" closing parent);
      List.rev acc
    end
    else if starts_with "<!--" then begin
      pos := !pos + 4;
      skip_until "-->";
      read_children parent acc
    end
    else if starts_with "<![CDATA[" then begin
      pos := !pos + 9;
      let start = !pos in
      skip_until "]]>";
      let text = String.sub input start (!pos - 3 - start) in
      read_children parent (Text text :: acc)
    end
    else if starts_with "<?" then begin
      pos := !pos + 2;
      skip_until "?>";
      read_children parent acc
    end
    else if starts_with "<" then begin
      let child = read_element () in
      read_children parent (child :: acc)
    end
    else begin
      let start = !pos in
      while !pos < n && input.[!pos] <> '<' do incr pos done;
      let raw = String.sub input start (!pos - start) in
      let text = decode_entities raw in
      if String.trim text = "" then read_children parent acc
      else read_children parent (Text text :: acc)
    end
  in
  skip_misc ();
  if !pos >= n then fail !pos "empty document";
  let root = read_element () in
  skip_misc ();
  if !pos < n then fail !pos "content after the root element";
  root

let parse_opt input = try Some (parse input) with Parse_error _ -> None

let name = function Element { name; _ } -> name | Text _ -> ""

let attr node key =
  match node with
  | Element { attrs; _ } -> List.assoc_opt key attrs
  | Text _ -> None

let children = function Element { children; _ } -> children | Text _ -> []

let elements node =
  List.filter (function Element _ -> true | Text _ -> false) (children node)

let rec gather_text buf = function
  | Text s -> Buffer.add_string buf s
  | Element { children; _ } -> List.iter (gather_text buf) children

let text_content node =
  let buf = Buffer.create 32 in
  gather_text buf node;
  String.trim (Buffer.contents buf)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = false) node =
  let buf = Buffer.create 256 in
  let rec render depth node =
    let pad = if indent then String.make (2 * depth) ' ' else "" in
    match node with
    | Text s ->
      Buffer.add_string buf pad;
      Buffer.add_string buf (escape s);
      if indent then Buffer.add_char buf '\n'
    | Element { name; attrs; children } ->
      Buffer.add_string buf pad;
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
        attrs;
      if children = [] then begin
        Buffer.add_string buf "/>";
        if indent then Buffer.add_char buf '\n'
      end
      else begin
        Buffer.add_char buf '>';
        if indent then Buffer.add_char buf '\n';
        List.iter (render (depth + 1)) children;
        Buffer.add_string buf pad;
        Buffer.add_string buf (Printf.sprintf "</%s>" name);
        if indent then Buffer.add_char buf '\n'
      end
  in
  render 0 node;
  Buffer.contents buf
