open Relational

let record_name root =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun child ->
      let n = Xml_doc.name child in
      let c = try Hashtbl.find counts n with Not_found -> 0 in
      Hashtbl.replace counts n (c + 1))
    (Xml_doc.elements root);
  let best =
    Hashtbl.fold
      (fun n c acc ->
        match acc with
        | Some (_, bc) when bc >= c -> acc
        | _ -> Some (n, c))
      counts None
  in
  match best with Some (n, c) when c >= 2 -> Some n | _ -> None

(* Column order: attributes and child elements in first-appearance order
   across all records. *)
let column_names records =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let register name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      order := name :: !order
    end
  in
  List.iter
    (fun record ->
      (match record with
      | Xml_doc.Element { attrs; _ } -> List.iter (fun (k, _) -> register k) attrs
      | Xml_doc.Text _ -> ());
      List.iter (fun child -> register (Xml_doc.name child)) (Xml_doc.elements record))
    records;
  List.rev !order

let cell_string record column =
  match Xml_doc.attr record column with
  | Some v -> Some v
  | None -> (
    match
      List.find_opt (fun c -> Xml_doc.name c = column) (Xml_doc.elements record)
    with
    | Some child -> Some (Xml_doc.text_content child)
    | None -> None)

let infer_column_type cells =
  let non_empty = List.filter_map (fun c -> c) cells |> List.filter (fun s -> String.trim s <> "") in
  if non_empty = [] then Value.Tstring
  else begin
    let all p = List.for_all p non_empty in
    if all (fun s -> int_of_string_opt (String.trim s) <> None) then Value.Tint
    else if all (fun s -> float_of_string_opt (String.trim s) <> None) then Value.Tfloat
    else if
      all (fun s ->
          match String.lowercase_ascii (String.trim s) with
          | "true" | "false" -> true
          | _ -> false)
    then Value.Tbool
    else Value.Tstring
  end

let table_of_document ?name root =
  match record_name root with
  | None -> invalid_arg "Shred.table_of_document: no repeated record elements"
  | Some record_tag ->
    let records =
      List.filter (fun c -> Xml_doc.name c = record_tag) (Xml_doc.elements root)
    in
    let columns = column_names records in
    if columns = [] then invalid_arg "Shred.table_of_document: records carry no fields";
    let cells_of column = List.map (fun r -> cell_string r column) records in
    let types = List.map (fun column -> (column, infer_column_type (cells_of column))) columns in
    let schema =
      Schema.make
        (match name with Some n -> n | None -> record_tag)
        (List.map (fun (column, ty) -> Attribute.make column ty) types)
    in
    let rows =
      List.map
        (fun record ->
          Array.of_list
            (List.map
               (fun (column, ty) ->
                 match cell_string record column with
                 | None -> Value.Null
                 | Some s -> Value.of_string_as ty s)
               types))
        records
    in
    Table.make schema rows

let table_of_string ?name input = table_of_document ?name (Xml_doc.parse input)

let document_of_table ?root table =
  let record_tag = Table.name table in
  let root_tag = match root with Some r -> r | None -> record_tag ^ "s" in
  let attrs = Schema.attributes (Table.schema table) in
  let record_of_row row =
    let children =
      Array.to_list attrs
      |> List.filter_map (fun (a : Attribute.t) ->
             let v = row.(Schema.index_of (Table.schema table) a.name) in
             if Value.is_null v then None
             else
               Some
                 (Xml_doc.Element
                    { name = a.name; attrs = []; children = [ Xml_doc.Text (Value.to_string v) ] }))
    in
    Xml_doc.Element { name = record_tag; attrs = []; children }
  in
  Xml_doc.Element
    {
      name = root_tag;
      attrs = [];
      children = Array.to_list (Array.map record_of_row (Table.rows table));
    }
