(** Shredding XML records into relational tables, so that contextual
    schema matching runs across the models (paper §7's future-work
    direction).

    The supported shape is the common "list of records" document:

    {v
      <inventory>
        <item sku="17"><type>book</type><title>...</title></item>
        <item sku="18"><type>cd</type><title>...</title></item>
      </inventory>
    v}

    Every repeated child element of the root becomes a row; its
    attributes and single-level child elements become columns (column
    name = attribute/element name); cell values are inferred like CSV
    fields.  Missing children become nulls.  Nested repeated elements
    are out of scope (they would need the full nested-relational Clio). *)

open Relational

val record_name : Xml_doc.t -> string option
(** The dominant child-element name of the root — the record tag —
    when the root has at least two children with one name.  [None] for
    documents that do not look like record lists. *)

val table_of_document : ?name:string -> Xml_doc.t -> Table.t
(** Shred the document into a table named after the record tag (or
    [name]).  Raises [Invalid_argument] when the document has no
    repeated record shape. *)

val table_of_string : ?name:string -> string -> Table.t
(** Parse then shred. *)

val document_of_table : ?root:string -> Table.t -> Xml_doc.t
(** Inverse direction: one record element per row, one child element per
    non-null cell.  [root] defaults to the table name ^ "s". *)
