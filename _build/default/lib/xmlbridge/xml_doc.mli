(** A minimal XML document model and parser — the substrate for the
    inter-model matching extension (paper §7: "inter-model contextual
    schema matching, namely between XML and relational model schemas").

    Supported: elements, attributes, text, self-closing tags, comments,
    processing instructions / XML declarations (skipped), CDATA, and the
    five predefined entities plus decimal/hex character references.
    Not supported (not needed for data shredding): namespaces, DTDs,
    external entities. *)

type t =
  | Element of { name : string; attrs : (string * string) list; children : t list }
  | Text of string

exception Parse_error of { position : int; message : string }

val parse : string -> t
(** Parse one document; returns the root element.  Raises
    {!Parse_error}. *)

val parse_opt : string -> t option

val name : t -> string
(** Element name; "" for text nodes. *)

val attr : t -> string -> string option
val children : t -> t list
val elements : t -> t list
(** Child elements only (no text nodes). *)

val text_content : t -> string
(** Concatenated descendant text, trimmed. *)

val to_string : ?indent:bool -> t -> string
(** Serialise with entity escaping; [indent] pretty-prints. *)
