lib/xmlbridge/xml_doc.ml: Buffer Char List Printf String
