lib/xmlbridge/xml_doc.mli:
