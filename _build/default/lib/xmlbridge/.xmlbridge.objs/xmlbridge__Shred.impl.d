lib/xmlbridge/shred.ml: Array Attribute Hashtbl List Relational Schema String Table Value Xml_doc
