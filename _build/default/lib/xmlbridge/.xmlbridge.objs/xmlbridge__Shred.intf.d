lib/xmlbridge/shred.mli: Relational Table Xml_doc
