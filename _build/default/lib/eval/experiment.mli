(** Repeated, seeded experiment runs with averaged measurements — the
    harness behind every §5 figure ("sufficient experiments are run ...
    and the results are averaged"). *)

type measurement = {
  fmeasure : float;
  accuracy : float;  (** paper's accuracy = recall *)
  precision : float;
  seconds : float;
  candidate_views : float;  (** average number of scored candidate views *)
}

val zero : measurement
val average : measurement list -> measurement

val repeat : reps:int -> base_seed:int -> (seed:int -> measurement) -> measurement
(** Run the experiment with seeds [base_seed], [base_seed+1], ... and
    average. *)

val measure :
  truth:Ground_truth.t -> Ctxmatch.Context_match.result -> measurement
(** Score one ContextMatch run against a ground truth. *)

val timed : (unit -> 'a) -> 'a * float
(** Wall-clock seconds. *)
