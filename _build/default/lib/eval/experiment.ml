type measurement = {
  fmeasure : float;
  accuracy : float;
  precision : float;
  seconds : float;
  candidate_views : float;
}

let zero =
  { fmeasure = 0.0; accuracy = 0.0; precision = 0.0; seconds = 0.0; candidate_views = 0.0 }

let average = function
  | [] -> zero
  | ms ->
    let n = float_of_int (List.length ms) in
    let sum f = List.fold_left (fun acc m -> acc +. f m) 0.0 ms in
    {
      fmeasure = sum (fun m -> m.fmeasure) /. n;
      accuracy = sum (fun m -> m.accuracy) /. n;
      precision = sum (fun m -> m.precision) /. n;
      seconds = sum (fun m -> m.seconds) /. n;
      candidate_views = sum (fun m -> m.candidate_views) /. n;
    }

let repeat ~reps ~base_seed f =
  average (List.init reps (fun i -> f ~seed:(base_seed + i)))

let measure ~truth (result : Ctxmatch.Context_match.result) =
  let matches = result.Ctxmatch.Context_match.matches in
  {
    fmeasure = Ground_truth.fmeasure truth matches;
    accuracy = Ground_truth.accuracy truth matches;
    precision = Ground_truth.precision truth matches;
    seconds = result.Ctxmatch.Context_match.elapsed_seconds;
    candidate_views = float_of_int result.Ctxmatch.Context_match.candidate_view_count;
  }

let timed f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)
