(** Plain-text series output for the figure-reproduction harness. *)

val section : string -> unit
(** Print a figure header banner. *)

val series :
  x_label:string -> columns:string list -> rows:(float * float list) list -> unit
(** Print an aligned table: first column the swept parameter, then one
    column per series. *)

val note : string -> unit
