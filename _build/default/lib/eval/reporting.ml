let section title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let series ~x_label ~columns ~rows =
  let header = x_label :: columns in
  let width = List.fold_left (fun acc h -> max acc (String.length h + 2)) 10 header in
  let pad s = Printf.sprintf "%-*s" width s in
  print_string (String.concat "" (List.map pad header));
  print_newline ();
  List.iter
    (fun (x, ys) ->
      print_string (pad (Printf.sprintf "%g" x));
      List.iter (fun y -> print_string (pad (Printf.sprintf "%.3f" y))) ys;
      print_newline ())
    rows

let note text = Printf.printf "  %s\n" text
