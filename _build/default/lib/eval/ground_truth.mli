(** Ground truth for contextual matches and the paper's evaluation
    protocol (§5, "Evaluating Accuracy"):

    - only edges originating from views are scored, all others ignored;
    - accuracy = percentage of correct matches found (i.e. recall over
      the expected contextual matches);
    - precision = percentage of found matches that are correct.

    An expected contextual match fixes the attribute pairing and the
    attribute the condition must select on, together with the set of
    values the condition may select from.  A found match is correct when
    its pairing matches, its condition is simple/simple-disjunctive on
    the designated attribute, and the selected values are a non-empty
    subset of the allowed set — e.g. with gamma = 4, both
    [ItemType = Book1] and [ItemType IN (Book1, Book2)] are correct
    conditions for a book-side match. *)

open Relational

type expectation = {
  src_base : string;
  src_attr : string;
  tgt_table : string;
  tgt_attr : string;
  context_attr : string;
  allowed_values : Value.t list;
}

type t = { expectations : expectation list }

val retail : Workload.Retail.params -> Workload.Retail.target_style -> t
(** Expected contextual matches of the Retail scenario: the informative
    attribute pairs of {!Workload.Retail.expected_pairs}, conditioned on
    ItemType selecting only book labels (book-side targets) or only CD
    labels (music side). *)

val grades : Workload.Grades.params -> t
(** Expected matches of the Grades scenario: for every exam i,
    (grades_narrow.grade -> grades_wide.grade_i) under examNum = i, plus
    name -> name under any single exam value. *)

val real_estate : unit -> t
(** Expected contextual matches of the real-estate scenario
    ({!Workload.Real_estate}): informative pairs conditioned on
    PropertyType. *)

val correct : t -> Matching.Schema_match.t -> bool
(** Whether a (contextual) match is correct w.r.t. the expectations. *)

val evaluate : t -> Matching.Schema_match.t list -> Stats.Fmeasure.counts
(** Score the contextual subset of the given matches against the
    expectations. *)

val fmeasure : t -> Matching.Schema_match.t list -> float
val accuracy : t -> Matching.Schema_match.t list -> float
(** The paper's accuracy = recall. *)

val precision : t -> Matching.Schema_match.t list -> float
