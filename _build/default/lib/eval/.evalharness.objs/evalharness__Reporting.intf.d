lib/eval/reporting.mli:
