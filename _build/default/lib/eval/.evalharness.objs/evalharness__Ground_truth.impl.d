lib/eval/ground_truth.ml: Condition Hashtbl List Matching Relational Stats String Value Workload
