lib/eval/ground_truth.mli: Matching Relational Stats Value Workload
