lib/eval/experiment.mli: Ctxmatch Ground_truth
