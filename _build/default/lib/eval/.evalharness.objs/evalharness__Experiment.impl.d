lib/eval/experiment.ml: Ctxmatch Ground_truth List Unix
