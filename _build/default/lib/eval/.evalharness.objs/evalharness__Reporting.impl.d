lib/eval/reporting.ml: List Printf String
