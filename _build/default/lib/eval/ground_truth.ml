open Relational

type expectation = {
  src_base : string;
  src_attr : string;
  tgt_table : string;
  tgt_attr : string;
  context_attr : string;
  allowed_values : Value.t list;
}

type t = { expectations : expectation list }

let retail (params : Workload.Retail.params) style =
  let books = Workload.Retail.book_labels ~gamma:params.gamma in
  let cds = Workload.Retail.cd_labels ~gamma:params.gamma in
  let expectations =
    List.map
      (fun (src_attr, tgt_table, tgt_attr, is_book) ->
        {
          src_base = Workload.Retail.source_table_name;
          src_attr;
          tgt_table;
          tgt_attr;
          context_attr = Workload.Retail.item_type_attr;
          allowed_values = (if is_book then books else cds);
        })
      (Workload.Retail.expected_pairs style)
  in
  { expectations }

let grades (params : Workload.Grades.params) =
  let exam_values = List.init params.exams (fun e -> Value.Int (e + 1)) in
  let grade_expectations =
    List.init params.exams (fun e ->
        let exam = e + 1 in
        {
          src_base = Workload.Grades.narrow_table_name;
          src_attr = Workload.Grades.grade_attr;
          tgt_table = Workload.Grades.wide_table_name;
          tgt_attr = Workload.Grades.grade_column exam;
          context_attr = Workload.Grades.exam_attr;
          allowed_values = [ Value.Int exam ];
        })
  in
  let name_expectation =
    {
      src_base = Workload.Grades.narrow_table_name;
      src_attr = "name";
      tgt_table = Workload.Grades.wide_table_name;
      tgt_attr = "name";
      context_attr = Workload.Grades.exam_attr;
      allowed_values = exam_values;
    }
  in
  { expectations = name_expectation :: grade_expectations }

let real_estate () =
  let expectations =
    List.map
      (fun (src_attr, tgt_table, tgt_attr, is_apartment) ->
        {
          src_base = "Listings";
          src_attr;
          tgt_table;
          tgt_attr;
          context_attr = Workload.Real_estate.property_type_attr;
          allowed_values =
            [
              (if is_apartment then Workload.Real_estate.apartment_label
               else Workload.Real_estate.house_label);
            ];
        })
      Workload.Real_estate.expected_pairs
  in
  { expectations }

let condition_ok expectation condition =
  match Condition.selected_values condition with
  | Some (attr, values) ->
    String.equal attr expectation.context_attr
    && values <> []
    && List.for_all
         (fun v -> List.exists (Value.equal v) expectation.allowed_values)
         values
  | None -> false

let matches_edge expectation (m : Matching.Schema_match.t) =
  String.equal expectation.src_base m.src_base
  && String.equal expectation.src_attr m.src_attr
  && String.equal expectation.tgt_table m.tgt_table
  && String.equal expectation.tgt_attr m.tgt_attr

let correct t (m : Matching.Schema_match.t) =
  Matching.Schema_match.is_contextual m
  && List.exists (fun e -> matches_edge e m && condition_ok e m.condition) t.expectations

let dedup_found matches =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun (m : Matching.Schema_match.t) ->
      let key =
        ( m.src_base,
          m.src_attr,
          m.tgt_table,
          m.tgt_attr,
          Condition.to_string (Condition.normalize m.condition) )
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    matches

let evaluate t matches =
  let found = dedup_found (List.filter Matching.Schema_match.is_contextual matches) in
  let correct_found = List.filter (correct t) found in
  let covered =
    List.filter
      (fun e ->
        List.exists
          (fun (m : Matching.Schema_match.t) -> matches_edge e m && condition_ok e m.condition)
          correct_found)
      t.expectations
  in
  (* counts: recall = covered/expected; precision is reported separately
     because several correct matches may cover one expectation. *)
  {
    Stats.Fmeasure.true_positives = List.length covered;
    found = List.length found;
    expected = List.length t.expectations;
  }

let precision t matches =
  let found = dedup_found (List.filter Matching.Schema_match.is_contextual matches) in
  if found = [] then 0.0
  else
    float_of_int (List.length (List.filter (correct t) found))
    /. float_of_int (List.length found)

let accuracy t matches = Stats.Fmeasure.recall (evaluate t matches)

let fmeasure t matches =
  Stats.Fmeasure.of_rates ~precision:(precision t matches) ~recall:(accuracy t matches)
