(** Multinomial naive Bayes over token bags.

    Used with 3-gram tokens for textual attributes (paper §3.2.3: "If h
    is a text attribute, a standard Naive Bayesian classifier is used,
    with the values tokenized into 3-grams").  Laplace-smoothed,
    computed in log space. *)

type t

val create : ?alpha:float -> unit -> t
(** [alpha] is the Laplace smoothing constant (default 1.0). *)

val train : t -> label:string -> string list -> unit
(** Add one training document (a token bag) under [label]. *)

val labels : t -> string list
(** Labels seen so far, sorted. *)

val document_count : t -> int

val log_posteriors : t -> string list -> (string * float) list
(** Unnormalised log posterior per label, best first.  Empty when the
    classifier has seen no data. *)

val classify : t -> string list -> string option
(** Most probable label; ties broken in favour of the more frequent
    label, then lexicographically.  [None] before any training. *)

val classify_with_margin : t -> string list -> (string * float) option
(** Best label and the log-posterior gap to the runner-up (infinite when
    there is a single label). *)
