type outcome = {
  confusion : Stats.Confusion.t;
  quality : float;
  null_likelihood : float;
  significant : bool;
}

let majority_prior labels =
  let n = Array.length labels in
  if n = 0 then 0.0
  else begin
    let counts = Hashtbl.create 16 in
    Array.iter
      (fun l ->
        let c = try Hashtbl.find counts l with Not_found -> 0 in
        Hashtbl.replace counts l (c + 1))
      labels;
    let best = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
    float_of_int best /. float_of_int n
  end

let test ?(threshold = 0.95) ~classify ~label_of ~majority_prior test_items =
  let confusion = Stats.Confusion.create () in
  Array.iter
    (fun item ->
      let truth = label_of item in
      let predicted = match classify item with Some l -> l | None -> "(none)" in
      Stats.Confusion.observe confusion ~truth ~predicted)
    test_items;
  let n = Stats.Confusion.total confusion in
  let correct = Stats.Confusion.correct confusion in
  let quality = Stats.Confusion.micro_f confusion in
  let null_likelihood =
    if n = 0 then 1.0
    else if majority_prior <= 0.0 then if correct > 0 then 0.0 else 1.0
    else if majority_prior >= 1.0 then 1.0
    else Stats.Distribution.binomial_tail_normal ~n ~p:majority_prior ~successes:correct
  in
  let significant = n > 0 && null_likelihood <= 1.0 -. threshold in
  { confusion; quality; null_likelihood; significant }
