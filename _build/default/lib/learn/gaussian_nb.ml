type class_acc = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
}

type t = {
  by_label : (string, class_acc) Hashtbl.t;
  mutable total : int;
  mutable global_min : float;
  mutable global_max : float;
}

let create () =
  {
    by_label = Hashtbl.create 16;
    total = 0;
    global_min = Float.infinity;
    global_max = Float.neg_infinity;
  }

let acc_for t label =
  match Hashtbl.find_opt t.by_label label with
  | Some a -> a
  | None ->
    let a = { n = 0; mean = 0.0; m2 = 0.0 } in
    Hashtbl.add t.by_label label a;
    a

let train t ~label x =
  let a = acc_for t label in
  a.n <- a.n + 1;
  let delta = x -. a.mean in
  a.mean <- a.mean +. (delta /. float_of_int a.n);
  a.m2 <- a.m2 +. (delta *. (x -. a.mean));
  t.total <- t.total + 1;
  if x < t.global_min then t.global_min <- x;
  if x > t.global_max then t.global_max <- x

let labels t =
  Hashtbl.fold (fun label _ acc -> label :: acc) t.by_label [] |> List.sort String.compare

let sample_count t = t.total

let stddev_of a = if a.n < 2 then 0.0 else sqrt (a.m2 /. float_of_int a.n)

let class_stats t label =
  match Hashtbl.find_opt t.by_label label with
  | None -> None
  | Some a -> Some (a.n, a.mean, stddev_of a)

(* Floor for degenerate sigmas: a constant class is modelled as a spike
   of width 1e-3 of the global spread (or 1e-6 absolute). *)
let sigma_floor t =
  let spread = t.global_max -. t.global_min in
  if Float.is_finite spread && spread > 0.0 then 1e-3 *. spread else 1e-6

let log_posteriors t x =
  if t.total = 0 then []
  else begin
    let floor = sigma_floor t in
    let scored =
      Hashtbl.fold
        (fun label a acc ->
          let prior = log (float_of_int a.n /. float_of_int t.total) in
          let sigma = Float.max (stddev_of a) floor in
          let z = (x -. a.mean) /. sigma in
          let log_density = -.log sigma -. (0.5 *. z *. z) in
          (label, prior +. log_density) :: acc)
        t.by_label []
    in
    List.sort
      (fun (l1, s1) (l2, s2) ->
        match Float.compare s2 s1 with
        | 0 -> (
          let n1 = (Hashtbl.find t.by_label l1).n and n2 = (Hashtbl.find t.by_label l2).n in
          match Int.compare n2 n1 with 0 -> String.compare l1 l2 | c -> c)
        | c -> c)
      scored
  end

let classify t x = match log_posteriors t x with [] -> None | (label, _) :: _ -> Some label

let classify_with_margin t x =
  match log_posteriors t x with
  | [] -> None
  | [ (label, _) ] -> Some (label, Float.infinity)
  | (label, s1) :: (_, s2) :: _ -> Some (label, s1 -. s2)
