(** A unified single-label classifier over mixed features.

    ClusteredViewGen trains "a classification function C_h" on attribute
    values; depending on the attribute's type this is naive Bayes on
    3-grams or a Gaussian classifier (paper §3.2.3).  This module hides
    the dispatch so the view-generation algorithm is type-agnostic. *)

type feature =
  | Text of string
  | Number of float
  | Missing

type t

val create : ?q:int -> ?alpha:float -> unit -> t
(** Fresh classifier; [q] is the gram size for text (default 3), [alpha]
    the NB smoothing. *)

val train : t -> label:string -> feature -> unit
(** [Missing] features are ignored. *)

val trained : t -> bool
(** True once at least one (non-missing) example has been seen. *)

val labels : t -> string list

val classify : t -> feature -> string option
(** Predicted label.  Numbers may have been seen as text and vice versa;
    each sub-classifier answers only for its own feature kind, and when
    that kind saw no training data the other is consulted on a textual
    rendering. [Missing] yields [None]. *)

val of_fun : (feature -> string option) -> t
(** Wrap an external prediction function (used by TgtClassInfer, whose
    "classifier" is the bestCAT composition).  Training on such a
    classifier raises [Invalid_argument]. *)
