type label_stats = {
  mutable docs : int;  (** training documents with this label *)
  mutable tokens : int;  (** total token occurrences under this label *)
  counts : (string, int) Hashtbl.t;  (** per-token occurrence counts *)
}

type t = {
  alpha : float;
  by_label : (string, label_stats) Hashtbl.t;
  vocabulary : (string, unit) Hashtbl.t;
  mutable total_docs : int;
}

let create ?(alpha = 1.0) () =
  { alpha; by_label = Hashtbl.create 16; vocabulary = Hashtbl.create 1024; total_docs = 0 }

let stats_for t label =
  match Hashtbl.find_opt t.by_label label with
  | Some s -> s
  | None ->
    let s = { docs = 0; tokens = 0; counts = Hashtbl.create 64 } in
    Hashtbl.add t.by_label label s;
    s

let train t ~label tokens =
  let s = stats_for t label in
  s.docs <- s.docs + 1;
  t.total_docs <- t.total_docs + 1;
  List.iter
    (fun tok ->
      Hashtbl.replace t.vocabulary tok ();
      let n = try Hashtbl.find s.counts tok with Not_found -> 0 in
      Hashtbl.replace s.counts tok (n + 1);
      s.tokens <- s.tokens + 1)
    tokens

let labels t =
  Hashtbl.fold (fun label _ acc -> label :: acc) t.by_label [] |> List.sort String.compare

let document_count t = t.total_docs

let log_posteriors t tokens =
  if t.total_docs = 0 then []
  else begin
    let vocab = float_of_int (max 1 (Hashtbl.length t.vocabulary)) in
    let scored =
      Hashtbl.fold
        (fun label s acc ->
          let prior = log (float_of_int s.docs /. float_of_int t.total_docs) in
          let denom = float_of_int s.tokens +. (t.alpha *. vocab) in
          let log_likelihood =
            List.fold_left
              (fun acc tok ->
                let n = try Hashtbl.find s.counts tok with Not_found -> 0 in
                acc +. log ((float_of_int n +. t.alpha) /. denom))
              0.0 tokens
          in
          (label, prior +. log_likelihood) :: acc)
        t.by_label []
    in
    (* Best first; ties go to the more frequent label, then lexicographic,
       so classification is deterministic. *)
    List.sort
      (fun (l1, s1) (l2, s2) ->
        match Float.compare s2 s1 with
        | 0 -> (
          let d1 = (Hashtbl.find t.by_label l1).docs and d2 = (Hashtbl.find t.by_label l2).docs in
          match Int.compare d2 d1 with 0 -> String.compare l1 l2 | c -> c)
        | c -> c)
      scored
  end

let classify t tokens =
  match log_posteriors t tokens with [] -> None | (label, _) :: _ -> Some label

let classify_with_margin t tokens =
  match log_posteriors t tokens with
  | [] -> None
  | [ (label, _) ] -> Some (label, Float.infinity)
  | (label, s1) :: (_, s2) :: _ -> Some (label, s1 -. s2)
