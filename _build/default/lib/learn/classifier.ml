type feature =
  | Text of string
  | Number of float
  | Missing

type core = {
  q : int;
  text : Naive_bayes.t;
  numeric : Gaussian_nb.t;
}

type t =
  | Trainable of core
  | External of (feature -> string option)

let create ?(q = 3) ?alpha () =
  Trainable { q; text = Naive_bayes.create ?alpha (); numeric = Gaussian_nb.create () }

let train t ~label feature =
  match t with
  | External _ -> invalid_arg "Classifier.train: external classifier"
  | Trainable core -> (
    match feature with
    | Missing -> ()
    | Text s -> Naive_bayes.train core.text ~label (Textsim.Tokenize.qgrams core.q s)
    | Number x -> Gaussian_nb.train core.numeric ~label x)

let trained = function
  | External _ -> true
  | Trainable core ->
    Naive_bayes.document_count core.text > 0 || Gaussian_nb.sample_count core.numeric > 0

let labels = function
  | External _ -> []
  | Trainable core ->
    List.sort_uniq String.compare (Naive_bayes.labels core.text @ Gaussian_nb.labels core.numeric)

let classify t feature =
  match t with
  | External f -> f feature
  | Trainable core -> (
    match feature with
    | Missing -> None
    | Text s ->
      if Naive_bayes.document_count core.text > 0 then
        Naive_bayes.classify core.text (Textsim.Tokenize.qgrams core.q s)
      else (
        (* All training data was numeric; try to read the text as a number. *)
        match float_of_string_opt (String.trim s) with
        | Some x -> Gaussian_nb.classify core.numeric x
        | None -> None)
    | Number x ->
      if Gaussian_nb.sample_count core.numeric > 0 then Gaussian_nb.classify core.numeric x
      else
        Naive_bayes.classify core.text
          (Textsim.Tokenize.qgrams core.q (Printf.sprintf "%g" x)))

let of_fun f = External f
