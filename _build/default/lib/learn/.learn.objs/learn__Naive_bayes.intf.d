lib/learn/naive_bayes.mli:
