lib/learn/gaussian_nb.ml: Float Hashtbl Int List String
