lib/learn/evaluation.ml: Array Hashtbl Stats
