lib/learn/evaluation.mli: Stats
