lib/learn/classifier.ml: Gaussian_nb List Naive_bayes Printf String Textsim
