lib/learn/gaussian_nb.mli:
