lib/learn/classifier.mli:
