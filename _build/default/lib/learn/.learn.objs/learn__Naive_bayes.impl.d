lib/learn/naive_bayes.ml: Float Hashtbl Int List String
