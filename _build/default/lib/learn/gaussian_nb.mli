(** Gaussian classifier for numeric attributes (paper §3.2.3: "If h is a
    numeric attribute, a statistical classifier is used instead").

    Each label gets a univariate normal fitted to its training values;
    classification picks the label maximising prior × density. *)

type t

val create : unit -> t
val train : t -> label:string -> float -> unit
val labels : t -> string list
val sample_count : t -> int

val class_stats : t -> string -> (int * float * float) option
(** (count, mean, stddev) for a label. *)

val log_posteriors : t -> float -> (string * float) list
(** Log prior + log density per label, best first.  A label whose fitted
    sigma is 0 (constant training values) is treated as a narrow spike
    (sigma floored to a small fraction of the global spread). *)

val classify : t -> float -> string option
val classify_with_margin : t -> float -> (string * float) option
