(** Held-out evaluation of classifiers, including the significance test
    of paper §3.2.2.

    The null hypothesis is that the attribute h carries no information
    about the label l; under it a naive classifier that always answers
    the most common training label scores Binomial(test_size, p) with
    p = freq(v_star) / train_size.  The alternative ("l is predictable from
    h") is accepted when the classifier's correct count is above the
    1 - T tail of that distribution (T defaults to 0.95). *)

type outcome = {
  confusion : Stats.Confusion.t;
  quality : float;  (** micro-averaged F1 of the predictions *)
  null_likelihood : float;
      (** probability that the null (no-correlation) classifier does at
          least as well *)
  significant : bool;  (** null_likelihood <= 1 - T *)
}

val test :
  ?threshold:float ->
  classify:('a -> string option) ->
  label_of:('a -> string) ->
  majority_prior:float ->
  'a array ->
  outcome
(** [test ~classify ~label_of ~majority_prior test_items] classifies
    every item; items the classifier abstains on count as errors with a
    synthetic "(none)" prediction.  [majority_prior] is the training
    frequency of the most common label (the null classifier's success
    probability).  [threshold] is T, default 0.95. *)

val majority_prior : string array -> float
(** Frequency of the most common label; 0 on an empty array. *)
