open Relational

type params = {
  rows : int;
  target_rows : int;
  seed : int;
}

let default_params = { rows = 500; target_rows = 250; seed = 42 }

let property_type_attr = "PropertyType"
let apartment_label = Value.String "apartment"
let house_label = Value.String "house"

let apartment_words =
  [|
    "studio"; "loft"; "downtown"; "balcony"; "elevator"; "furnished"; "utilities";
    "included"; "lease"; "pets"; "allowed"; "laundry"; "transit"; "walkable"; "sunny";
    "high"; "rise"; "concierge"; "gym"; "rooftop";
  |]

let house_words =
  [|
    "detached"; "garden"; "garage"; "driveway"; "fireplace"; "basement"; "backyard";
    "renovated"; "hardwood"; "quiet"; "family"; "neighborhood"; "schools"; "acre";
    "porch"; "colonial"; "ranch"; "victorian"; "deck"; "shed";
  |]

let agents =
  [|
    "harbor realty"; "sunrise properties"; "oakwood agency"; "metro homes"; "keystone group";
    "bluedoor realty"; "summit estates"; "lakeside brokers"; "fairview realty"; "stonebridge";
  |]

let headline rng words =
  let n = 3 + Stats.Rng.int rng 3 in
  List.init n (fun _ -> Stats.Rng.pick rng words) |> String.concat " "

let apartment_row rng =
  ( headline rng apartment_words,
    Stats.Rng.pick rng agents,
    600.0 +. Stats.Rng.float rng 2900.0,
    1 + Stats.Rng.int rng 3 )

let house_row rng =
  ( headline rng house_words,
    Stats.Rng.pick rng agents,
    120_000.0 +. Stats.Rng.float rng 830_000.0,
    2 + Stats.Rng.int rng 5 )

let source params =
  let rng = Stats.Rng.create params.seed in
  let schema =
    Schema.make "Listings"
      [
        Attribute.int "ListingID";
        Attribute.string property_type_attr;
        Attribute.string "Headline";
        Attribute.string "Agent";
        Attribute.float "Price";
        Attribute.int "Bedrooms";
      ]
  in
  let row i =
    let is_apartment = Stats.Rng.bool rng in
    let text, agent, price, bedrooms =
      if is_apartment then apartment_row rng else house_row rng
    in
    [|
      Value.Int (i + 1);
      (if is_apartment then apartment_label else house_label);
      Value.String text;
      Value.String agent;
      Value.Float price;
      Value.Int bedrooms;
    |]
  in
  Database.make "realestate-source" [ Table.of_rows schema (Array.init params.rows row) ]

let target params =
  let rng = Stats.Rng.create (params.seed + 7919) in
  let mk name =
    Schema.make name
      [
        Attribute.int "id";
        Attribute.string "headline";
        Attribute.string "agent";
        Attribute.float "price";
        Attribute.int "bedrooms";
      ]
  in
  let row kind i =
    let text, agent, price, bedrooms =
      if kind = `Apartment then apartment_row rng else house_row rng
    in
    [|
      Value.Int (i + 1); Value.String text; Value.String agent; Value.Float price;
      Value.Int bedrooms;
    |]
  in
  Database.make "realestate-target"
    [
      Table.of_rows (mk "Apartments") (Array.init params.target_rows (row `Apartment));
      Table.of_rows (mk "Houses") (Array.init params.target_rows (row `House));
    ]

let expected_pairs =
  let attrs = [ ("ListingID", "id"); ("Headline", "headline"); ("Agent", "agent");
                ("Price", "price"); ("Bedrooms", "bedrooms") ] in
  List.map (fun (s, t) -> (s, "Apartments", t, true)) attrs
  @ List.map (fun (s, t) -> (s, "Houses", t, false)) attrs
