open Relational

type params = {
  rows : int;
  target_rows : int;
  gamma : int;
  seed : int;
}

let default_params = { rows = 600; target_rows = 300; gamma = 4; seed = 42 }

type target_style =
  | Ryan_eyers
  | Aaron_day
  | Barrett_arney

let all_styles = [ Ryan_eyers; Aaron_day; Barrett_arney ]

let style_name = function
  | Ryan_eyers -> "Ryan_Eyers"
  | Aaron_day -> "Aaron_Day"
  | Barrett_arney -> "Barrett_Arney"

let source_table_name = "Inventory"
let item_type_attr = "ItemType"
let stock_status_attr = "StockStatus"

let half gamma =
  if gamma < 2 || gamma mod 2 <> 0 then invalid_arg "Retail: gamma must be even and >= 2";
  gamma / 2

let book_labels ~gamma =
  let h = half gamma in
  if h = 1 then [ Value.String "Book" ]
  else List.init h (fun i -> Value.String (Printf.sprintf "Book%d" (i + 1)))

let cd_labels ~gamma =
  let h = half gamma in
  if h = 1 then [ Value.String "CD" ]
  else List.init h (fun i -> Value.String (Printf.sprintf "CD%d" (i + 1)))

let stock_values = [| "Low"; "Normal"; "High" |]

let source params =
  let rng = Stats.Rng.create params.seed in
  let books = Array.of_list (book_labels ~gamma:params.gamma) in
  let cds = Array.of_list (cd_labels ~gamma:params.gamma) in
  let schema =
    Schema.make source_table_name
      [
        Attribute.int "ItemID";
        Attribute.string item_type_attr;
        Attribute.string "Title";
        Attribute.string "Creator";
        Attribute.string "Publisher";
        Attribute.float "Price";
        Attribute.int "Year";
        Attribute.int "Quantity";
        Attribute.string stock_status_attr;
      ]
  in
  let row i =
    let stock = Value.String (Stats.Rng.pick rng stock_values) in
    let quantity = Value.Int (Stats.Rng.int rng 200) in
    if Stats.Rng.bool rng then begin
      let b = Corpus.book rng in
      [|
        Value.Int (i + 1);
        Stats.Rng.pick rng books;
        Value.String b.Corpus.book_title;
        Value.String b.Corpus.author;
        Value.String b.Corpus.publisher;
        Value.Float b.Corpus.book_price;
        Value.Int b.Corpus.book_year;
        quantity;
        stock;
      |]
    end
    else begin
      let a = Corpus.album rng in
      [|
        Value.Int (i + 1);
        Stats.Rng.pick rng cds;
        Value.String a.Corpus.album_title;
        Value.String a.Corpus.artist;
        Value.String a.Corpus.label;
        Value.Float a.Corpus.album_price;
        Value.Int a.Corpus.album_year;
        quantity;
        stock;
      |]
    end
  in
  let rows = Array.init params.rows row in
  Database.make "retail-source" [ Table.of_rows schema rows ]

(* Per-style attribute names: (book table, music table) schema
   definitions plus how corpus records land in them. *)
let book_attr_names = function
  | Ryan_eyers -> ("Book", [ "BookID"; "BookTitle"; "Author"; "Publisher"; "BookPrice"; "PubYear" ])
  | Aaron_day -> ("Books", [ "book_id"; "book_name"; "written_by"; "published_by"; "retail_price"; "year_published" ])
  | Barrett_arney ->
    ("book_inventory", [ "entry_no"; "title"; "writer"; "publishing_house"; "cost"; "printed" ])

let music_attr_names = function
  | Ryan_eyers -> ("Music", [ "AlbumID"; "AlbumTitle"; "Artist"; "Label"; "AlbumPrice"; "ReleaseYear" ])
  | Aaron_day -> ("CDs", [ "cd_id"; "cd_name"; "performed_by"; "recorded_by"; "retail_price"; "year_released" ])
  | Barrett_arney ->
    ("music_inventory", [ "entry_no"; "title"; "performer"; "studio"; "cost"; "released" ])

let target params style =
  (* Independent stream: the target sample shares distributions with the
     source but not records. *)
  let rng = Stats.Rng.create (params.seed + 7919) in
  let book_name, book_attrs = book_attr_names style in
  let music_name, music_attrs = music_attr_names style in
  let mk_schema name = function
    | [ id; title; creator; publisher; price; year ] ->
      Schema.make name
        [
          Attribute.int id;
          Attribute.string title;
          Attribute.string creator;
          Attribute.string publisher;
          Attribute.float price;
          Attribute.int year;
        ]
    | _ -> invalid_arg "Retail.target: attribute list arity"
  in
  let book_schema = mk_schema book_name book_attrs in
  let music_schema = mk_schema music_name music_attrs in
  let book_row i =
    let b = Corpus.book rng in
    [|
      Value.Int (i + 1);
      Value.String b.Corpus.book_title;
      Value.String b.Corpus.author;
      Value.String b.Corpus.publisher;
      Value.Float b.Corpus.book_price;
      Value.Int b.Corpus.book_year;
    |]
  in
  let music_row i =
    let a = Corpus.album rng in
    [|
      Value.Int (i + 1);
      Value.String a.Corpus.album_title;
      Value.String a.Corpus.artist;
      Value.String a.Corpus.label;
      Value.Float a.Corpus.album_price;
      Value.Int a.Corpus.album_year;
    |]
  in
  Database.make
    (Printf.sprintf "retail-target-%s" (style_name style))
    [
      Table.of_rows book_schema (Array.init params.target_rows book_row);
      Table.of_rows music_schema (Array.init params.target_rows music_row);
    ]

let expected_pairs style =
  let book_name, book_attrs = book_attr_names style in
  let music_name, music_attrs = music_attr_names style in
  let source_attrs = [ "ItemID"; "Title"; "Creator"; "Publisher"; "Price"; "Year" ] in
  let pair tbl is_book src tgt = (src, tbl, tgt, is_book) in
  List.map2 (pair book_name true) source_attrs book_attrs
  @ List.map2 (pair music_name false) source_attrs music_attrs
