(** Schema augmentations for the §5 robustness experiments. *)

open Relational

val add_correlated :
  seed:int -> count:int -> rho:float -> table:string -> reference:string -> Database.t ->
  Database.t
(** §5.3: append [count] "chameleon" attributes Corr1..CorrN to [table],
    each sharing the domain of the [reference] categorical attribute.
    With probability [rho] a row copies its reference value; otherwise
    it draws uniformly from the domain.  Matches involving these
    attributes are counted as errors by the evaluation. *)

val widen :
  seed:int ->
  noise_attrs:int ->
  categorical_noise:int ->
  categorical_reference:string option ->
  Database.t ->
  Database.t
(** §5.5: append [noise_attrs] non-categorical text attributes
    (real-estate vocabulary, the same unrelated domain in every table —
    so they preferentially match each other) to every table; and, to
    every table containing [categorical_reference], append
    [categorical_noise] categorical attributes drawn uniformly from that
    attribute's domain. *)
