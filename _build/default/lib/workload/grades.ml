open Relational

type params = {
  students : int;
  exams : int;
  sigma : float;
  seed : int;
}

let default_params = { students = 200; exams = 5; sigma = 8.0; seed = 42 }

let narrow_table_name = "grades_narrow"
let wide_table_name = "grades_wide"
let exam_attr = "examNum"
let grade_attr = "grade"

let mean_of_exam i = 40.0 +. (10.0 *. float_of_int (i - 1))

let grade_column i = Printf.sprintf "grade%d" i

let student_first =
  [|
    "alice"; "benjamin"; "carla"; "derek"; "elena"; "felix"; "grace"; "hassan"; "irene";
    "jacob"; "kyoko"; "liam"; "maria"; "nikolai"; "olivia"; "pedro"; "quinn"; "rosa";
    "stefan"; "tamara"; "umar"; "valerie"; "walter"; "xenia"; "yusuf"; "zoe";
  |]

let student_last =
  [|
    "anderson"; "baker"; "castillo"; "dubois"; "eriksen"; "fischer"; "gonzalez"; "haines";
    "ivanova"; "jensen"; "kowalski"; "lindqvist"; "moreau"; "nakamura"; "olsen"; "petrov";
    "quintana"; "rossi"; "schmidt"; "tanaka"; "ueda"; "vasquez"; "weber"; "xu"; "yamada";
    "zimmerman";
  |]

let student_names rng n =
  (* Unique names: a sampled (first, last) pair plus a per-student serial
     to guarantee uniqueness beyond the pool size. *)
  List.init n (fun i ->
      Printf.sprintf "%s %s %03d"
        (Stats.Rng.pick rng student_first)
        (Stats.Rng.pick rng student_last)
        (i + 1))

let clamp_grade g = Float.max 0.0 (Float.min 100.0 g)

let narrow params =
  let rng = Stats.Rng.create params.seed in
  let names = student_names rng params.students in
  let schema =
    Schema.make narrow_table_name
      [ Attribute.string "name"; Attribute.int exam_attr; Attribute.float grade_attr ]
  in
  let rows =
    List.concat_map
      (fun name ->
        List.init params.exams (fun e ->
            let exam = e + 1 in
            let grade =
              clamp_grade
                (Stats.Rng.gaussian rng ~mu:(mean_of_exam exam) ~sigma:params.sigma)
            in
            [| Value.String name; Value.Int exam; Value.Float grade |]))
      names
  in
  Database.make "grades-source" [ Table.make schema rows ]

let wide params =
  (* Fresh stream: same distributions, different draws and students. *)
  let rng = Stats.Rng.create (params.seed + 104729) in
  let names = student_names rng params.students in
  let attrs =
    Attribute.string "name"
    :: List.init params.exams (fun e -> Attribute.float (grade_column (e + 1)))
  in
  let schema = Schema.make wide_table_name attrs in
  let rows =
    List.map
      (fun name ->
        Array.of_list
          (Value.String name
          :: List.init params.exams (fun e ->
                 Value.Float
                   (clamp_grade
                      (Stats.Rng.gaussian rng ~mu:(mean_of_exam (e + 1))
                         ~sigma:params.sigma)))))
      names
  in
  Database.make "grades-target" [ Table.make schema rows ]
