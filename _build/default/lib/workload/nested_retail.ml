open Relational

type params = {
  rows : int;
  target_rows : int;
  seed : int;
}

let default_params = { rows = 600; target_rows = 200; seed = 42 }

let book_label = Value.String "Book"
let cd_label = Value.String "CD"

let source params =
  let rng = Stats.Rng.create params.seed in
  let schema =
    Schema.make "Inventory"
      [
        Attribute.int "ItemID";
        Attribute.string "ItemType";
        Attribute.int "Fiction";
        Attribute.string "Title";
        Attribute.string "Creator";
        Attribute.float "Price";
        Attribute.int "Year";
      ]
  in
  let row i =
    if Stats.Rng.bool rng then begin
      let fiction = Stats.Rng.bool rng in
      let b = if fiction then Corpus.book rng else Corpus.nonfiction_book rng in
      [|
        Value.Int (i + 1);
        book_label;
        Value.Int (if fiction then 1 else 0);
        Value.String b.Corpus.book_title;
        Value.String b.Corpus.author;
        Value.Float b.Corpus.book_price;
        Value.Int b.Corpus.book_year;
      |]
    end
    else begin
      let a = Corpus.album rng in
      [|
        Value.Int (i + 1);
        cd_label;
        Value.Int 0;
        Value.String a.Corpus.album_title;
        Value.String a.Corpus.artist;
        Value.Float a.Corpus.album_price;
        Value.Int a.Corpus.album_year;
      |]
    end
  in
  Database.make "nested-retail-source" [ Table.of_rows schema (Array.init params.rows row) ]

let target params =
  let rng = Stats.Rng.create (params.seed + 7919) in
  let mk name = Schema.make name
      [ Attribute.int "id"; Attribute.string "title"; Attribute.string "creator";
        Attribute.float "price" ]
  in
  let book_row fiction i =
    let b = if fiction then Corpus.book rng else Corpus.nonfiction_book rng in
    [|
      Value.Int (i + 1);
      Value.String b.Corpus.book_title;
      Value.String b.Corpus.author;
      Value.Float b.Corpus.book_price;
    |]
  in
  let music_row i =
    let a = Corpus.album rng in
    [|
      Value.Int (i + 1);
      Value.String a.Corpus.album_title;
      Value.String a.Corpus.artist;
      Value.Float a.Corpus.album_price;
    |]
  in
  Database.make "nested-retail-target"
    [
      Table.of_rows (mk "FictionBooks") (Array.init params.target_rows (book_row true));
      Table.of_rows (mk "ReferenceBooks") (Array.init params.target_rows (book_row false));
      Table.of_rows (mk "Music") (Array.init params.target_rows music_row);
    ]

type expected = {
  src_attr : string;
  tgt_table : string;
  tgt_attr : string;
  required_any : (string * Value.t) list list;
}

let expected_matches =
  (* Fiction = 1 alone already selects exactly the fiction books (CDs
     never carry the flag); ReferenceBooks genuinely needs the
     2-condition; Music is selected by ItemType alone (possibly with a
     vacuous Fiction = 0). *)
  let fiction =
    [
      [ ("Fiction", Value.Int 1) ];
      [ ("ItemType", book_label); ("Fiction", Value.Int 1) ];
    ]
  in
  let reference = [ [ ("ItemType", book_label); ("Fiction", Value.Int 0) ] ] in
  let music =
    [ [ ("ItemType", cd_label) ]; [ ("ItemType", cd_label); ("Fiction", Value.Int 0) ] ]
  in
  List.concat_map
    (fun (tgt_table, required_any) ->
      [
        { src_attr = "Title"; tgt_table; tgt_attr = "title"; required_any };
        { src_attr = "Creator"; tgt_table; tgt_attr = "creator"; required_any };
        { src_attr = "Price"; tgt_table; tgt_attr = "price"; required_any };
      ])
    [ ("FictionBooks", fiction); ("ReferenceBooks", reference); ("Music", music) ]

(* Decompose a conjunction of simple(-disjunctive) conditions into the
   attribute -> selected-values bindings it pins. *)
let rec pins condition =
  match condition with
  | Condition.True -> Some []
  | Condition.And (a, b) -> (
    match (pins a, pins b) with
    | Some pa, Some pb -> Some (pa @ pb)
    | _, _ -> None)
  | Condition.Eq _ | Condition.In _ | Condition.Or _ -> (
    match Condition.selected_values condition with
    | Some (attr, values) -> Some [ (attr, values) ]
    | None -> None)
  | Condition.Not _ -> None

let condition_ok expected condition =
  match pins (Condition.normalize condition) with
  | None -> false
  | Some bindings ->
    let pinned_exactly attr v =
      List.exists (fun (a, vs) -> String.equal a attr && vs = [ v ]) bindings
    in
    (* the condition must pin exactly one of the accepted sets: every
       required pair pinned, and no pins beyond that set *)
    List.exists
      (fun required ->
        List.for_all (fun (a, v) -> pinned_exactly a v) required
        && List.for_all (fun (a, _) -> List.mem_assoc a required) bindings)
      expected.required_any

let accuracy matches =
  let contextual = List.filter Matching.Schema_match.is_contextual matches in
  let found e =
    List.exists
      (fun (m : Matching.Schema_match.t) ->
        String.equal m.src_attr e.src_attr
        && String.equal m.tgt_table e.tgt_table
        && String.equal m.tgt_attr e.tgt_attr
        && condition_ok e m.condition)
      contextual
  in
  let hits = List.length (List.filter found expected_matches) in
  float_of_int hits /. float_of_int (List.length expected_matches)
