lib/workload/retail.mli: Database Relational Value
