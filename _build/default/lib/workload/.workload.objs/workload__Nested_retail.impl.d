lib/workload/nested_retail.ml: Array Attribute Condition Corpus Database List Matching Relational Schema Stats String Table Value
