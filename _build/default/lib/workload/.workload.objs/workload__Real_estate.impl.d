lib/workload/real_estate.ml: Array Attribute Database List Relational Schema Stats String Table Value
