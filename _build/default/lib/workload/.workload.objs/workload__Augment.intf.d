lib/workload/augment.mli: Database Relational
