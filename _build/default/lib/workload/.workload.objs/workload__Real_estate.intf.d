lib/workload/real_estate.mli: Database Relational Value
