lib/workload/pricing.ml: Attribute Condition Database List Matching Relational Schema Stats String Table Value
