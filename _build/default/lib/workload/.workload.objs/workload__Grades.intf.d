lib/workload/grades.mli: Database Relational
