lib/workload/corpus.ml: Array List Printf Stats String
