lib/workload/augment.ml: Array Attribute Corpus Database List Printf Relational Schema Stats Table Value
