lib/workload/nested_retail.mli: Condition Database Matching Relational Value
