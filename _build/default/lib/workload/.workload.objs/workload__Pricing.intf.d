lib/workload/pricing.mli: Database Matching Relational
