lib/workload/corpus.mli: Stats
