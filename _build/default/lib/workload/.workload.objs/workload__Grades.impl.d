lib/workload/grades.ml: Array Attribute Database Float List Printf Relational Schema Stats Table Value
