open Relational

type params = {
  items : int;
  seed : int;
  discount : float;
}

let default_params = { items = 250; seed = 42; discount = 0.6 }

let reg = Value.String "reg"
let sale = Value.String "sale"

(* Regular prices are log-uniform-ish over [20, 220]; sale prices are a
   noisy discount of the regular price, so the two contexts have clearly
   different distributions. *)
let price_pair rng discount =
  let regular = 20.0 +. Stats.Rng.float rng 200.0 in
  let sale_price = regular *. (discount +. Stats.Rng.float rng 0.15) in
  (regular, sale_price)

let source params =
  let rng = Stats.Rng.create params.seed in
  let schema =
    Schema.make "PriceList"
      [ Attribute.int "itemno"; Attribute.string "prcode"; Attribute.float "price" ]
  in
  let rows =
    List.concat
      (List.init params.items (fun i ->
           let regular, sale_price = price_pair rng params.discount in
           [
             [| Value.Int (i + 1); reg; Value.Float regular |];
             [| Value.Int (i + 1); sale; Value.Float sale_price |];
           ]))
  in
  Database.make "pricing-source" [ Table.make schema rows ]

let target params =
  let rng = Stats.Rng.create (params.seed + 104729) in
  let schema =
    Schema.make "Catalog"
      [ Attribute.int "itemno"; Attribute.float "price"; Attribute.float "sale" ]
  in
  let rows =
    List.init params.items (fun i ->
        let regular, sale_price = price_pair rng params.discount in
        [| Value.Int (i + 1); Value.Float regular; Value.Float sale_price |])
  in
  Database.make "pricing-target" [ Table.make schema rows ]

let accuracy matches =
  let found tgt_attr code =
    List.exists
      (fun (m : Matching.Schema_match.t) ->
        Matching.Schema_match.is_contextual m
        && String.equal m.src_attr "price"
        && String.equal m.tgt_table "Catalog"
        && String.equal m.tgt_attr tgt_attr
        &&
        match Condition.selected_values m.condition with
        | Some ("prcode", [ v ]) -> Value.equal v code
        | Some _ | None -> false)
      matches
  in
  let hits = (if found "price" reg then 1 else 0) + if found "sale" sale then 1 else 0 in
  float_of_int hits /. 2.0
