type book = {
  book_title : string;
  author : string;
  publisher : string;
  isbn : string;
  pages : int;
  book_price : float;
  book_year : int;
}

type album = {
  album_title : string;
  artist : string;
  label : string;
  catalog : string;
  tracks : int;
  album_price : float;
  album_year : int;
}

(* Word pools.  Book vocabulary skews literary/historical; music
   vocabulary skews performance/emotion; the 3-gram distributions of the
   generated titles are therefore clearly separable, like real scraped
   inventories. *)

let book_title_words =
  [|
    "history"; "shadow"; "secret"; "garden"; "kingdom"; "journey"; "memoir"; "daughter";
    "chronicle"; "winter"; "empire"; "silent"; "forgotten"; "testament"; "biography";
    "papers"; "letters"; "diary"; "handbook"; "introduction"; "principles"; "analysis";
    "modern"; "ancient"; "complete"; "illustrated"; "portrait"; "voyage"; "essays";
    "meditations"; "republic"; "inheritance"; "translation"; "manuscript"; "library";
    "professor"; "scholar"; "detective"; "inspector"; "physician"; "cartographer";
  |]

let book_title_patterns =
  [|
    [ "the"; "W"; "of"; "the"; "W" ];
    [ "a"; "W"; "of"; "W" ];
    [ "the"; "W"; "W" ];
    [ "W"; "and"; "W" ];
    [ "the"; "last"; "W" ];
    [ "an"; "W"; "to"; "W" ];
    [ "W"; "in"; "the"; "W" ];
  |]

let author_first =
  [|
    "margaret"; "jonathan"; "harold"; "eleanor"; "theodore"; "virginia"; "frederick";
    "katherine"; "nathaniel"; "charlotte"; "edmund"; "dorothy"; "lawrence"; "beatrice";
    "rudolph"; "penelope"; "ambrose"; "gwendolyn"; "cornelius"; "josephine";
  |]

let author_last =
  [|
    "whitfield"; "ashworth"; "pemberton"; "hargrove"; "blackwood"; "fairchild";
    "montgomery"; "worthington"; "caldwell"; "ellsworth"; "thackeray"; "winthrop";
    "abernathy"; "lockhart"; "ravenswood"; "stanhope"; "kingsley"; "fitzgerald";
    "huxley"; "marlowe";
  |]

(* Publisher/label pools are generated combinatorially (~100 values
   each) so that, like real scraped inventories, no single publisher
   covers more than a sliver of the sample — keeping these columns
   non-categorical under the §2.1 rule. *)
let publisher_stems =
  [|
    "penguin house"; "oxford"; "harbor lane"; "meridian"; "northfield"; "crowngate";
    "lantern hill"; "atlas"; "riverbend"; "smithson"; "bellweather"; "copperfield";
    "dunmore"; "eastgate"; "foxglove"; "greenmantle"; "hawthorn"; "ironwood";
    "juniper"; "kestrel";
  |]

let publisher_suffixes = [| "press"; "books"; "academic"; "editions"; "publishing" |]

let publishers =
  Array.concat
    (Array.to_list
       (Array.map
          (fun stem -> Array.map (fun suffix -> stem ^ " " ^ suffix) publisher_suffixes)
          publisher_stems))

let music_title_words =
  [|
    "love"; "baby"; "dance"; "heart"; "groove"; "midnight"; "funky"; "electric";
    "rhythm"; "soul"; "fever"; "boogie"; "remix"; "acoustic"; "unplugged"; "sessions";
    "greatest"; "hits"; "live"; "tour"; "anthem"; "vibes"; "beats"; "disco"; "neon";
    "velvet"; "sugar"; "honey"; "crazy"; "wild"; "forever"; "tonight"; "summer";
    "bounce"; "hustle"; "jam"; "radio"; "stereo"; "tempo";
  |]

let music_title_patterns =
  [|
    [ "W"; "W" ];
    [ "W"; "me"; "W" ];
    [ "the"; "W"; "W" ];
    [ "W"; "tonight" ];
    [ "W"; "W"; "W" ];
    [ "livin"; "for"; "the"; "W" ];
  |]

let artist_first =
  [| "dj"; "mc"; "lil"; "big"; "funky"; "smooth"; "electric"; "golden"; "crazy"; "sweet" |]

let artist_last =
  [|
    "malone"; "vibration"; "cascade"; "turner"; "jackson 5ive"; "mirage"; "serenade";
    "voltage"; "ramirez"; "bluebird"; "tempest"; "rockwell"; "dynamite"; "solstice";
    "jukebox"; "carousel";
  |]

let band_nouns =
  [|
    "wolves"; "ramblers"; "satellites"; "prophets"; "hurricanes"; "bandits"; "echoes";
    "strangers"; "outlaws"; "dreamers"; "nomads"; "vipers"; "comets"; "drifters";
  |]

let label_stems =
  [|
    "groove street"; "midnight owl"; "blue velvet"; "sonic wave"; "platinum beat";
    "echo chamber"; "neon sky"; "bassline"; "golden ear"; "vinyl brothers"; "sub bass";
    "high fidelity"; "turntable"; "boom box"; "low end"; "fat wax"; "loop garden";
    "reverb alley"; "tape deck"; "woofer";
  |]

let label_suffixes = [| "records"; "music"; "studios"; "recordings"; "sound" |]

let labels =
  Array.concat
    (Array.to_list
       (Array.map
          (fun stem -> Array.map (fun suffix -> stem ^ " " ^ suffix) label_suffixes)
          label_stems))

(* Non-fiction vocabulary: technical/reference flavoured, clearly
   separable from the fiction pool above by 3-gram profile. *)
let nonfiction_title_words =
  [|
    "databases"; "algorithms"; "gardening"; "photography"; "accounting"; "carpentry";
    "nutrition"; "statistics"; "economics"; "electronics"; "navigation"; "calculus";
    "astronomy"; "plumbing"; "chemistry"; "linguistics"; "cartography"; "meteorology";
    "horticulture"; "typography";
  |]

let nonfiction_title_patterns =
  [|
    [ "introduction"; "to"; "W" ];
    [ "handbook"; "of"; "W" ];
    [ "principles"; "of"; "W" ];
    [ "practical"; "W" ];
    [ "W"; "for"; "beginners" ];
    [ "the"; "complete"; "guide"; "to"; "W" ];
    [ "advanced"; "W"; "techniques" ];
  |]

let real_estate_words =
  [|
    "bedroom"; "bathroom"; "garage"; "hardwood"; "granite"; "renovated"; "spacious";
    "cul-de-sac"; "mortgage"; "escrow"; "listing"; "acreage"; "patio"; "fireplace";
    "basement"; "zoning"; "appraisal"; "frontage"; "duplex"; "tenant";
  |]

let fill_pattern rng words pattern =
  pattern
  |> List.map (fun piece -> if piece = "W" then Stats.Rng.pick rng words else piece)
  |> String.concat " "

let book rng =
  let title = fill_pattern rng book_title_words (Stats.Rng.pick rng book_title_patterns) in
  let author =
    Printf.sprintf "%s %s" (Stats.Rng.pick rng author_first) (Stats.Rng.pick rng author_last)
  in
  let isbn =
    Printf.sprintf "978-%d-%04d-%04d-%d" (Stats.Rng.int rng 10) (Stats.Rng.int rng 10000)
      (Stats.Rng.int rng 10000) (Stats.Rng.int rng 10)
  in
  {
    book_title = title;
    author;
    publisher = Stats.Rng.pick rng publishers;
    isbn;
    pages = 120 + Stats.Rng.int rng 700;
    book_price = 5.0 +. Stats.Rng.float rng 35.0;
    book_year = 1960 + Stats.Rng.int rng 46;
  }

let album rng =
  let title = fill_pattern rng music_title_words (Stats.Rng.pick rng music_title_patterns) in
  let artist =
    if Stats.Rng.bool rng then
      Printf.sprintf "%s %s" (Stats.Rng.pick rng artist_first) (Stats.Rng.pick rng artist_last)
    else Printf.sprintf "the %s" (Stats.Rng.pick rng band_nouns)
  in
  let catalog = Printf.sprintf "CAT-%05d" (Stats.Rng.int rng 100000) in
  {
    album_title = title;
    artist;
    label = Stats.Rng.pick rng labels;
    catalog;
    tracks = 8 + Stats.Rng.int rng 13;
    album_price = 8.0 +. Stats.Rng.float rng 17.0;
    album_year = 1970 + Stats.Rng.int rng 36;
  }

let books rng n = List.init n (fun _ -> book rng)
let albums rng n = List.init n (fun _ -> album rng)

let nonfiction_book rng =
  let b = book rng in
  {
    b with
    book_title = fill_pattern rng nonfiction_title_words (Stats.Rng.pick rng nonfiction_title_patterns);
  }

let random_word rng = Stats.Rng.pick rng real_estate_words

let random_noise_text rng =
  let n = 2 + Stats.Rng.int rng 3 in
  List.init n (fun _ -> random_word rng) |> String.concat " "
