(** Deterministic synthetic corpus for the Retail experiments.

    The paper scraped book and CD records from commercial web sites; we
    substitute a generator whose book and music text have distinct
    word/3-gram distributions — the property the instance matchers and
    TgtClassInfer actually exploit (see DESIGN.md, substitutions). *)

type book = {
  book_title : string;
  author : string;
  publisher : string;
  isbn : string;
  pages : int;
  book_price : float;
  book_year : int;
}

type album = {
  album_title : string;
  artist : string;
  label : string;
  catalog : string;
  tracks : int;
  album_price : float;
  album_year : int;
}

val book : Stats.Rng.t -> book
(** A (fiction-flavoured) book record. *)

val nonfiction_book : Stats.Rng.t -> book
(** Like {!book} but with a reference/technical title vocabulary —
    3-gram-separable from fiction titles (used by the conjunctive
    nested-retail scenario, paper §3.5). *)

val album : Stats.Rng.t -> album

val books : Stats.Rng.t -> int -> book list
val albums : Stats.Rng.t -> int -> album list

val random_word : Stats.Rng.t -> string
(** A word from an unrelated (real-estate flavoured) pool — noise for
    the schema-size experiments (§5.5). *)

val random_noise_text : Stats.Rng.t -> string
(** 2–4 unrelated words. *)
