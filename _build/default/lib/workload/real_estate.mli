(** Real-estate scenario from the paper's introduction ("apartments and
    houses in a real-estate database"): another instance of the
    common-table vs separate-tables heterogeneity.

    Source [Listings](ListingID, PropertyType, Headline, Agent, Price,
    Bedrooms): apartments carry monthly rents (600-3500) and
    rental-flavoured headlines; houses carry sale prices
    (120k-950k) and sale-flavoured headlines.  Targets: [Apartments] and
    [Houses], each (id, headline, agent, price, bedrooms). *)

open Relational

type params = {
  rows : int;
  target_rows : int;
  seed : int;
}

val default_params : params
val source : params -> Database.t
val target : params -> Database.t

val expected_pairs : (string * string * string * bool) list
(** (source attr, target table, target attr, is_apartment_side). *)

val property_type_attr : string
val apartment_label : Value.t
val house_label : Value.t
