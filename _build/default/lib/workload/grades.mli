(** The Grades data set (paper §5, "Grades data"): attribute
    normalization.

    Source [grades_narrow](name, examNum, grade): one row per (student,
    exam).  Target [grades_wide](name, grade1..gradeN): one row per
    student.  The mean of exam i is 40 + 10(i-1) in both schemas; the
    standard deviation sigma is the experiment's difficulty knob — as it
    grows, adjacent exams' score distributions overlap and the matcher
    can no longer align examNum = i with grade_i. *)

open Relational

type params = {
  students : int;
  exams : int;
  sigma : float;
  seed : int;
}

val default_params : params
(** 200 students, 5 exams, sigma = 8, seed 42. *)

val narrow_table_name : string
val wide_table_name : string
val exam_attr : string
val grade_attr : string

val mean_of_exam : int -> float
(** [40 + 10 (i - 1)] for exam i (1-based). *)

val grade_column : int -> string
(** "grade3" for exam 3. *)

val narrow : params -> Database.t
val wide : params -> Database.t
