(** The Retail data set (paper §5, "Inventory Data").

    Source: a combined item file in the style of the Colin_Bleckner
    student schema — one [Inventory] table holding both books and CDs,
    with a low-cardinality [ItemType] column (plus the paper's added
    [StockStatus]).  Targets: three schema styles that separate books
    and music into distinct tables (Ryan_Eyers, Aaron_Day,
    Barrett_Arney).

    [gamma] is the paper's γ: the total number of Book/CD labels in
    ItemType.  With γ = 4, book rows get Book1 or Book2 and music rows
    CD1 or CD2 at random (§5: "we allow expansion of the cardinality of
    ItemType in order to make the contextual matching problem
    harder"). *)

open Relational

type params = {
  rows : int;  (** source Inventory rows *)
  target_rows : int;  (** rows per target table *)
  gamma : int;  (** even, >= 2 *)
  seed : int;
}

val default_params : params
(** 600 source rows, 300 per target table, gamma = 4, seed 42. *)

type target_style =
  | Ryan_eyers
  | Aaron_day
  | Barrett_arney

val all_styles : target_style list
val style_name : target_style -> string

val book_labels : gamma:int -> Value.t list
(** The ItemType values marking books ("Book" for gamma = 2, else
    Book1..Book_{gamma/2}). *)

val cd_labels : gamma:int -> Value.t list

val source : params -> Database.t
(** The combined [Inventory] source database. *)

val target : params -> target_style -> Database.t
(** Book + Music tables populated from the same corpus with an
    independent stream (disjoint records, same distributions). *)

val source_table_name : string
val item_type_attr : string
val stock_status_attr : string

(** Correct attribute pairings for evaluation: (source attr, target
    table, target attr, is_book_side). *)
val expected_pairs : target_style -> (string * string * string * bool) list
