(** The price-code scenario of the paper's Example 1.2.

    Source [PriceList](itemno, prcode, price): one row per (item, price
    code), prcode in {"reg", "sale"}.  Target [Catalog](itemno, price,
    sale): the regular and sale prices of an item side by side.  A
    standard matcher finds at most PriceList.price -> Catalog.price;
    contextual matching should produce
      price -> price under prcode = "reg" and
      price -> sale  under prcode = "sale",
    and the §4 machinery joins the two views on itemno (attribute
    normalization with 2 contexts). *)

open Relational

type params = {
  items : int;
  seed : int;
  discount : float;  (** sale = discount * reg, default 0.6 *)
}

val default_params : params
val source : params -> Database.t
val target : params -> Database.t

val accuracy : Matching.Schema_match.t list -> float
(** Fraction of the two expected price matches found with the correct
    prcode condition. *)
