open Relational

let add_correlated ~seed ~count ~rho ~table ~reference db =
  let rng = Stats.Rng.create seed in
  let tbl = Database.table db table in
  let domain = Array.of_list (Table.distinct_values tbl reference) in
  if Array.length domain = 0 then db
  else begin
    let ref_idx = Schema.index_of (Table.schema tbl) reference in
    let augmented =
      List.init count (fun k -> k + 1)
      |> List.fold_left
           (fun acc k ->
             let attr = Attribute.string (Printf.sprintf "Corr%d" k) in
             Table.append_column acc attr (fun row ->
                 if Stats.Rng.float rng 1.0 < rho then row.(ref_idx)
                 else Stats.Rng.pick rng domain))
           tbl
    in
    Database.replace_table db augmented
  end

let widen ~seed ~noise_attrs ~categorical_noise ~categorical_reference db =
  let rng = Stats.Rng.create seed in
  let widen_table tbl =
    let with_noise =
      List.init noise_attrs (fun k -> k + 1)
      |> List.fold_left
           (fun acc k ->
             let attr = Attribute.string (Printf.sprintf "Noise%d" k) in
             Table.append_column acc attr (fun _ ->
                 Value.String (Corpus.random_noise_text rng)))
           tbl
    in
    match categorical_reference with
    | None -> with_noise
    | Some reference ->
      if not (Schema.mem (Table.schema tbl) reference) then with_noise
      else begin
        let domain = Array.of_list (Table.distinct_values tbl reference) in
        if Array.length domain = 0 then with_noise
        else
          List.init categorical_noise (fun k -> k + 1)
          |> List.fold_left
               (fun acc k ->
                 let attr = Attribute.string (Printf.sprintf "CatNoise%d" k) in
                 Table.append_column acc attr (fun _ -> Stats.Rng.pick rng domain))
               with_noise
      end
  in
  Database.map_tables widen_table db
