(** Nested-context retail: the conjunctive-condition scenario of §3.5.

    The source is a combined inventory whose books additionally carry a
    [Fiction] flag; the target separates *three* item kinds:
    fiction books, non-fiction books, and music.  The correct match for
    the fiction table needs the 2-condition
    [ItemType = Book AND Fiction = 1] — discoverable by the iterated
    ContextMatch of {!Ctxmatch.Conjunctive} as long as one of the
    sub-conditions is found in the first stage. *)

open Relational

type params = {
  rows : int;
  target_rows : int;  (** per target table *)
  seed : int;
}

val default_params : params

val source : params -> Database.t
(** [Inventory](ItemID, ItemType, Fiction, Title, Creator, Price, Year):
    ItemType in {Book, CD}; Fiction in {0, 1} (always 0 for CDs);
    fiction and non-fiction books draw titles from separable
    vocabularies. *)

val target : params -> Database.t
(** [FictionBooks] / [ReferenceBooks] / [Music], each
    (id, title, creator, price). *)

type expected = {
  src_attr : string;
  tgt_table : string;
  tgt_attr : string;
  required_any : (string * Value.t) list list;
      (** alternative sets of attribute/value pins, any of which makes
          the condition semantically correct: e.g. FictionBooks accepts
          [Fiction = 1] alone (CDs are never fiction) or the full
          conjunction [ItemType = Book AND Fiction = 1] *)
}

val expected_matches : expected list

val condition_ok : expected -> Condition.t -> bool
(** Whether a (possibly conjunctive) condition pins exactly one of the
    accepted attribute/value sets — every required pair pinned, and no
    pins outside that set. *)

val accuracy : Matching.Schema_match.t list -> float
(** Fraction of {!expected_matches} found with a correct condition. *)
