open Relational

type origin =
  | Base
  | View_of of { base : string; query : Sp_query.t }

type t = {
  name : string;
  table : Table.t;
  origin : origin;
}

let base table = { name = Table.name table; table; origin = Base }

let of_view ?name view =
  let name = match name with Some n -> n | None -> View.name view in
  let query = Sp_query.select_all (Table.name (View.base view)) (View.condition view) in
  {
    name;
    table = Table.rename (View.materialize view) name;
    origin = View_of { base = Table.name (View.base view); query };
  }

let of_query ~name query base_instance =
  {
    name;
    table = Table.rename (Sp_query.eval query base_instance) name;
    origin = View_of { base = query.Sp_query.from; query };
  }

let name t = t.name
let table t = t.table
let attributes t = Schema.attribute_names (Table.schema t.table)

let is_view t = match t.origin with Base -> false | View_of _ -> true

let selection_condition t =
  match t.origin with Base -> Condition.True | View_of { query; _ } -> query.Sp_query.where

let base_name t = match t.origin with Base -> t.name | View_of { base; _ } -> base

let pp fmt t =
  match t.origin with
  | Base -> Format.fprintf fmt "base %s" t.name
  | View_of { query; _ } -> Format.fprintf fmt "view %s = %s" t.name (Sp_query.to_string query)
