open Relational

type key = { rel : string; key_attrs : string list }

type foreign_key = {
  fk_rel : string;
  fk_attrs : string list;
  ref_rel : string;
  ref_attrs : string list;
}

type contextual_fk = {
  cfk_rel : string;
  cfk_attrs : string list;
  ctx_attr : string;
  ctx_value : Value.t;
  cfk_ref_rel : string;
  cfk_ref_attrs : string list;
  ref_ctx_attr : string;
}

type t =
  | Key of key
  | Fk of foreign_key
  | Cfk of contextual_fk

let key rel key_attrs = Key { rel; key_attrs }

let fk fk_rel fk_attrs ref_rel ref_attrs = Fk { fk_rel; fk_attrs; ref_rel; ref_attrs }

let cfk ~rel ~attrs ~ctx_attr ~ctx_value ~ref_rel ~ref_attrs ~ref_ctx_attr =
  Cfk
    {
      cfk_rel = rel;
      cfk_attrs = attrs;
      ctx_attr;
      ctx_value;
      cfk_ref_rel = ref_rel;
      cfk_ref_attrs = ref_attrs;
      ref_ctx_attr;
    }

let rel_of = function
  | Key k -> k.rel
  | Fk f -> f.fk_rel
  | Cfk c -> c.cfk_rel

let holds_key instance k = Table.is_unique instance k.key_attrs

let tuple_values table attrs row =
  let schema = Table.schema table in
  List.map (fun a -> row.(Schema.index_of schema a)) attrs

let has_null vs = List.exists Value.is_null vs

let key_of_values vs = List.map Value.to_string vs

let holds_fk referencing referenced f =
  let targets = Hashtbl.create (Table.row_count referenced) in
  Array.iter
    (fun row ->
      Hashtbl.replace targets (key_of_values (tuple_values referenced f.ref_attrs row)) ())
    (Table.rows referenced);
  Array.for_all
    (fun row ->
      let vs = tuple_values referencing f.fk_attrs row in
      has_null vs || Hashtbl.mem targets (key_of_values vs))
    (Table.rows referencing)

let holds_cfk view_instance referenced c =
  let targets = Hashtbl.create (Table.row_count referenced) in
  Array.iter
    (fun row ->
      let ctx = tuple_values referenced [ c.ref_ctx_attr ] row in
      match ctx with
      | [ b ] when Value.equal b c.ctx_value ->
        Hashtbl.replace targets (key_of_values (tuple_values referenced c.cfk_ref_attrs row)) ()
      | _ -> ())
    (Table.rows referenced);
  Array.for_all
    (fun row ->
      let vs = tuple_values view_instance c.cfk_attrs row in
      has_null vs || Hashtbl.mem targets (key_of_values vs))
    (Table.rows view_instance)

let equal a b = a = b

let to_string = function
  | Key k -> Printf.sprintf "%s[%s] -> %s" k.rel (String.concat ", " k.key_attrs) k.rel
  | Fk f ->
    Printf.sprintf "%s[%s] ⊆ %s[%s]" f.fk_rel
      (String.concat ", " f.fk_attrs)
      f.ref_rel
      (String.concat ", " f.ref_attrs)
  | Cfk c ->
    Printf.sprintf "%s[%s, %s = %s] ⊆ %s[%s, %s]" c.cfk_rel
      (String.concat ", " c.cfk_attrs)
      c.ctx_attr (Value.to_string c.ctx_value) c.cfk_ref_rel
      (String.concat ", " c.cfk_ref_attrs)
      c.ref_ctx_attr

let pp fmt t = Format.pp_print_string fmt (to_string t)
