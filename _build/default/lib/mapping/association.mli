(** Semantic-association (join) rules (paper §4.3).

    Clio's base rules: attributes of the same relation associate, and a
    foreign key justifies an outer join.  The paper adds three rules for
    views, driven by the propagated constraints:

    - (join 1): two views over the *same* attributes of the same base
      table, selecting different values v1 ≠ v2 of the same attribute,
      each with a propagated key V_i[X] and a contextual foreign key on
      [X, a = v_i], join on X — different properties of the same object
      (the attribute-normalization join).
    - (join 2): two views over *different* attributes of the same base
      table join on a common propagated key X only when their selection
      conditions are the *same* a = v (avoids associating properties of
      different objects).
    - (join 3): a contextual foreign key V[Y, a = v] ⊆ R[X, b] justifies
      an outer join from V to R on Y = X restricted to R.b = v. *)

open Relational

type kind =
  | Full_outer
  | Left_outer

type join = {
  left : string;
  right : string;
  on : (string * string) list;  (** (left attr, right attr) pairs *)
  right_restrict : (string * Value.t) list;
      (** constant equalities imposed on the right side (join 3's b = v) *)
  kind : kind;
  rule : string;  (** "clio-fk" | "join1" | "join2" | "join3" *)
}

val joins :
  relations:Relation.t list ->
  constraints:Constraints.t list ->
  derived:Propagation.derived list ->
  join list
(** All joins justified by the rules, deduplicated (a join and its
    mirror count once). *)
