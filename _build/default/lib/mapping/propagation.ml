open Relational

type derived = {
  constr : Constraints.t;
  rule : string;
}

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let simple_selection rel =
  match Relation.selection_condition rel with
  | Condition.Eq (attr, v) -> Some (attr, v)
  | Condition.True | Condition.In _ | Condition.And _ | Condition.Or _ | Condition.Not _ ->
    None

let keys_of base constraints =
  List.filter_map
    (function
      | Constraints.Key k when String.equal k.Constraints.rel base -> Some k
      | Constraints.Key _ | Constraints.Fk _ | Constraints.Cfk _ -> None)
    constraints

let fks_of base constraints =
  List.filter_map
    (function
      | Constraints.Fk f when String.equal f.Constraints.fk_rel base -> Some f
      | Constraints.Key _ | Constraints.Fk _ | Constraints.Cfk _ -> None)
    constraints

let derive ~relations ~base =
  let by_name = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace by_name (Relation.name r) r) relations;
  let results = ref [] in
  let emit rule constr =
    if not (List.exists (fun d -> Constraints.equal d.constr constr) !results) then
      results := { constr; rule } :: !results
  in
  List.iter
    (fun view ->
      if Relation.is_view view then begin
        let view_name = Relation.name view in
        let view_attrs = Relation.attributes view in
        let base_name = Relation.base_name view in
        let base_keys = keys_of base_name base in
        (* selection-propagation: keys fully visible in the view survive *)
        List.iter
          (fun (k : Constraints.key) ->
            if subset k.key_attrs view_attrs then
              emit "selection-propagation" (Constraints.key view_name k.key_attrs))
          base_keys;
        (* rules that need a simple selection a = v *)
        (match simple_selection view with
        | None -> ()
        | Some (a, v) ->
          List.iter
            (fun (k : Constraints.key) ->
              if List.mem a k.key_attrs then begin
                let x = List.filter (fun attr -> attr <> a) k.key_attrs in
                if x <> [] && subset x view_attrs then begin
                  (* contextual propagation: V[X] is a key of V *)
                  emit "contextual-propagation" (Constraints.key view_name x);
                  (* contextual constraint: V[X, a = v] ⊆ R[X, a] *)
                  emit "contextual-constraint"
                    (Constraints.cfk ~rel:view_name ~attrs:x ~ctx_attr:a ~ctx_value:v
                       ~ref_rel:base_name ~ref_attrs:x ~ref_ctx_attr:a)
                end
              end)
            base_keys);
        (* view-referencing: needs the selection to cover the whole
           domain of the selection attribute (checked on the sample) *)
        (match Condition.selected_values (Relation.selection_condition view) with
        | None -> ()
        | Some (a, selected) -> (
          match Hashtbl.find_opt by_name base_name with
          | None -> ()
          | Some base_rel ->
            let domain = Table.distinct_values (Relation.table base_rel) a in
            let covers =
              domain <> []
              && List.for_all (fun v -> List.exists (Value.equal v) selected) domain
            in
            if covers then
              List.iter
                (fun (k : Constraints.key) ->
                  if List.mem a k.key_attrs && subset k.key_attrs view_attrs then
                    emit "view-referencing"
                      (Constraints.fk base_name k.key_attrs view_name k.key_attrs))
                base_keys));
        (* fk-propagation *)
        List.iter
          (fun (f : Constraints.foreign_key) ->
            if subset f.fk_attrs view_attrs then
              emit "fk-propagation"
                (Constraints.fk view_name f.fk_attrs f.ref_rel f.ref_attrs))
          (fks_of base_name base)
      end)
    relations;
  List.rev !results

let derived_keys derived =
  List.filter_map
    (fun d ->
      match d.constr with
      | Constraints.Key k -> Some k
      | Constraints.Fk _ | Constraints.Cfk _ -> None)
    derived

let derived_fks derived =
  List.filter_map
    (fun d ->
      match d.constr with
      | Constraints.Fk f -> Some f
      | Constraints.Key _ | Constraints.Cfk _ -> None)
    derived

let derived_cfks derived =
  List.filter_map
    (fun d ->
      match d.constr with
      | Constraints.Cfk c -> Some c
      | Constraints.Key _ | Constraints.Fk _ -> None)
    derived
