open Relational

type t = {
  select : string list option;
  from : string;
  where : Condition.t;
}

let select_all from where = { select = None; from; where }
let select_some attrs from where = { select = Some attrs; from; where }

let output_attributes t base_schema =
  match t.select with
  | None -> Schema.attribute_names base_schema
  | Some attrs -> attrs

let eval t instance =
  if not (String.equal (Table.name instance) t.from) then
    invalid_arg
      (Printf.sprintf "Sp_query.eval: query is over %s, got instance of %s" t.from
         (Table.name instance));
  let schema = Table.schema instance in
  let filtered = Table.filter instance (Condition.eval t.where schema) in
  match t.select with
  | None -> filtered
  | Some attrs -> Table.project filtered attrs

let to_string t =
  let select =
    match t.select with None -> "*" | Some attrs -> String.concat ", " attrs
  in
  match t.where with
  | Condition.True -> Printf.sprintf "select %s from %s" select t.from
  | c -> Printf.sprintf "select %s from %s where %s" select t.from (Condition.to_string c)

let pp fmt t = Format.pp_print_string fmt (to_string t)
