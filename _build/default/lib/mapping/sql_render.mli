(** Render a mapping plan as SQL text.

    Clio's practical output is a transformation query; this module
    prints the equivalent of what {!Executor} runs: CREATE VIEW
    statements for the contextual views, and one INSERT ... SELECT per
    logical-table component, with outer joins on the association keys
    and Skolem placeholders for unmapped non-null target attributes.
    The text targets a generic SQL dialect and is meant for human
    review / porting, not for execution by this library. *)

val quote_ident : string -> string
(** Double-quote an identifier, escaping embedded quotes. *)

val literal : Relational.Value.t -> string
(** SQL literal for a value; NULL for nulls; strings single-quoted with
    doubling. *)

val condition : Relational.Condition.t -> string
(** SQL boolean expression. *)

val view_definition : Relation.t -> string option
(** [CREATE VIEW name AS SELECT ... FROM base WHERE ...] for a view
    relation; [None] for base relations. *)

val component_select : Mapping_gen.plan -> Mapping_gen.target_mapping ->
  Mapping_gen.component -> string
(** The SELECT implementing one logical-table component of a target
    mapping. *)

val target_insert : Mapping_gen.plan -> Mapping_gen.target_mapping -> string
(** INSERT INTO target ... with the UNION ALL of the component
    SELECTs; an empty mapping renders as a comment. *)

val script : Mapping_gen.plan -> string
(** The full script: all view definitions and all inserts. *)
