open Relational

type kind =
  | Full_outer
  | Left_outer

type join = {
  left : string;
  right : string;
  on : (string * string) list;
  right_restrict : (string * Value.t) list;
  kind : kind;
  rule : string;
}

let keys_of rel_name all =
  List.filter_map
    (function
      | Constraints.Key k when String.equal k.Constraints.rel rel_name -> Some k.Constraints.key_attrs
      | Constraints.Key _ | Constraints.Fk _ | Constraints.Cfk _ -> None)
    all

let cfks_of rel_name all =
  List.filter_map
    (function
      | Constraints.Cfk c when String.equal c.Constraints.cfk_rel rel_name -> Some c
      | Constraints.Key _ | Constraints.Fk _ | Constraints.Cfk _ -> None)
    all

let fks all =
  List.filter_map
    (function
      | Constraints.Fk f -> Some f
      | Constraints.Key _ | Constraints.Cfk _ -> None)
    all

let same_string_lists a b =
  List.sort String.compare a = List.sort String.compare b

let joins ~relations ~constraints ~derived =
  let all = constraints @ List.map (fun d -> d.Propagation.constr) derived in
  let results = ref [] in
  let emit j =
    let mirror_exists =
      List.exists
        (fun existing ->
          (String.equal existing.left j.left && String.equal existing.right j.right
          || (String.equal existing.left j.right && String.equal existing.right j.left))
          && String.equal existing.rule j.rule)
        !results
    in
    if not mirror_exists then results := j :: !results
  in
  let names = List.map Relation.name relations in
  (* Clio base rule: outer join on declared/derived foreign keys between
     present relations. *)
  List.iter
    (fun (f : Constraints.foreign_key) ->
      if List.mem f.fk_rel names && List.mem f.ref_rel names then
        emit
          {
            left = f.fk_rel;
            right = f.ref_rel;
            on = List.combine f.fk_attrs f.ref_attrs;
            right_restrict = [];
            kind = Left_outer;
            rule = "clio-fk";
          })
    (fks all);
  (* join 1 and join 2: pairs of views over the same base table. *)
  let views = List.filter Relation.is_view relations in
  let rec view_pairs = function
    | [] -> ()
    | v1 :: rest ->
      List.iter
        (fun v2 ->
          if String.equal (Relation.base_name v1) (Relation.base_name v2) then begin
            let n1 = Relation.name v1 and n2 = Relation.name v2 in
            let keys1 = keys_of n1 all and keys2 = keys_of n2 all in
            let cfks1 = cfks_of n1 all and cfks2 = cfks_of n2 all in
            let shared_keys =
              List.filter (fun k1 -> List.exists (same_string_lists k1) keys2) keys1
            in
            let cfk_on k (cfks : Constraints.contextual_fk list) =
              List.exists (fun c -> same_string_lists c.Constraints.cfk_attrs k) cfks
            in
            let sel1 = Relation.selection_condition v1 in
            let sel2 = Relation.selection_condition v2 in
            let same_attrs =
              same_string_lists (Relation.attributes v1) (Relation.attributes v2)
            in
            List.iter
              (fun key ->
                if cfk_on key cfks1 && cfk_on key cfks2 then begin
                  let on = List.map (fun a -> (a, a)) key in
                  if same_attrs then begin
                    (* join 1: same attributes, different selected values
                       of the same attribute *)
                    match
                      ( Condition.selected_values sel1,
                        Condition.selected_values sel2 )
                    with
                    | Some (a1, vs1), Some (a2, vs2)
                      when String.equal a1 a2 && vs1 <> vs2 ->
                      emit
                        {
                          left = n1;
                          right = n2;
                          on;
                          right_restrict = [];
                          kind = Full_outer;
                          rule = "join1";
                        }
                    | _, _ -> ()
                  end
                  else if Condition.equal sel1 sel2 then
                    (* join 2: different attributes, identical condition *)
                    emit
                      {
                        left = n1;
                        right = n2;
                        on;
                        right_restrict = [];
                        kind = Full_outer;
                        rule = "join2";
                      }
                end)
              shared_keys
          end)
        rest;
      view_pairs rest
  in
  view_pairs views;
  (* join 3: a contextual foreign key justifies an outer join with a
     constant restriction on the referenced side. *)
  List.iter
    (fun view ->
      let n = Relation.name view in
      List.iter
        (fun (c : Constraints.contextual_fk) ->
          if List.mem c.cfk_ref_rel names && not (String.equal c.cfk_ref_rel n) then
            emit
              {
                left = n;
                right = c.cfk_ref_rel;
                on = List.combine c.cfk_attrs c.cfk_ref_attrs;
                right_restrict = [ (c.ref_ctx_attr, c.ctx_value) ];
                kind = Left_outer;
                rule = "join3";
              })
        (cfks_of n all))
    views;
  List.rev !results
