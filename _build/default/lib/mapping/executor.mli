(** Relational executor for mapping queries: qualified projections and
    hash-based outer joins.

    Joined tables use qualified column names ("relation.attr") so
    same-named attributes of different relations coexist. *)

open Relational

val qualify : Relation.t -> Table.t
(** The relation's instance with columns renamed to "rel.attr". *)

val join : Table.t -> Table.t -> on:(string * string) list ->
  right_restrict:(string * Value.t) list -> kind:Association.kind -> Table.t
(** [join left right ~on ~right_restrict ~kind] — hash join on the
    (left attr, right attr) pairs (qualified names).  Null join keys
    never match.  [Left_outer] keeps unmatched left rows padded with
    nulls; [Full_outer] also keeps unmatched right rows.
    [right_restrict] filters the right side to rows with the given
    constant values before joining. *)

val join_component :
  Relation.t list -> Association.join list -> start:string -> Table.t * string list
(** Assemble one logical table: breadth-first from [start], apply every
    usable join once; returns the joined (qualified) table and the list
    of relations actually incorporated. *)
