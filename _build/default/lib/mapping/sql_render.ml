open Relational

let quote_ident name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    name;
  Buffer.add_char buf '"';
  Buffer.contents buf

let literal = function
  | Value.Null -> "NULL"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf

let rec condition = function
  | Condition.True -> "TRUE"
  | Condition.Eq (attr, v) -> Printf.sprintf "%s = %s" (quote_ident attr) (literal v)
  | Condition.In (attr, vs) ->
    Printf.sprintf "%s IN (%s)" (quote_ident attr)
      (String.concat ", " (List.map literal vs))
  | Condition.And (a, b) -> Printf.sprintf "(%s AND %s)" (condition a) (condition b)
  | Condition.Or (a, b) -> Printf.sprintf "(%s OR %s)" (condition a) (condition b)
  | Condition.Not a -> Printf.sprintf "NOT (%s)" (condition a)

let view_definition rel =
  if not (Relation.is_view rel) then None
  else begin
    let base = Relation.base_name rel in
    let select =
      match Relation.selection_condition rel with
      | Condition.True -> Printf.sprintf "SELECT * FROM %s" (quote_ident base)
      | c -> Printf.sprintf "SELECT * FROM %s WHERE %s" (quote_ident base) (condition c)
    in
    Some (Printf.sprintf "CREATE VIEW %s AS %s;" (quote_ident (Relation.name rel)) select)
  end

let qualified rel attr = Printf.sprintf "%s.%s" (quote_ident rel) (quote_ident attr)

let component_select (plan : Mapping_gen.plan) mapping (component : Mapping_gen.component) =
  let target_table = Database.table plan.Mapping_gen.target mapping.Mapping_gen.target_table in
  let target_attrs = Schema.attribute_names (Table.schema target_table) in
  let best_for attr =
    List.fold_left
      (fun best (c : Mapping_gen.correspondence) ->
        if not (String.equal c.tgt_attr attr) then best
        else
          match best with
          | Some (b : Mapping_gen.correspondence) when b.confidence >= c.confidence -> best
          | Some _ | None -> Some c)
      None component.Mapping_gen.correspondences
  in
  let projections =
    List.map
      (fun attr ->
        match best_for attr with
        | Some c -> Printf.sprintf "%s AS %s" (qualified c.rel c.rel_attr) (quote_ident attr)
        | None ->
          (* Skolem placeholder: unmapped non-null target attribute *)
          Printf.sprintf "'sk_%s(...)' AS %s" attr (quote_ident attr))
      target_attrs
  in
  match component.Mapping_gen.component_relations with
  | [] -> "SELECT NULL WHERE FALSE"
  | first :: _ ->
    (* anchor on the relation with the most correspondences, mirroring
       the executor's choice *)
    let count rel =
      List.length
        (List.filter
           (fun (c : Mapping_gen.correspondence) -> String.equal c.rel rel)
           component.Mapping_gen.correspondences)
    in
    let start =
      List.fold_left
        (fun best rel -> if count rel > count best then rel else best)
        first component.Mapping_gen.component_relations
    in
    let joined = ref [ start ] in
    let join_clauses = ref [] in
    let rec grow () =
      let usable =
        List.find_opt
          (fun (j : Association.join) ->
            (List.mem j.left !joined && not (List.mem j.right !joined))
            || List.mem j.right !joined
               && (not (List.mem j.left !joined))
               && j.right_restrict = [])
          component.Mapping_gen.component_joins
      in
      match usable with
      | None -> ()
      | Some j ->
        let forward = List.mem j.left !joined in
        let fresh = if forward then j.right else j.left in
        let kind =
          match j.kind with Association.Full_outer -> "FULL OUTER JOIN" | Left_outer -> "LEFT OUTER JOIN"
        in
        let on =
          List.map
            (fun (a, b) ->
              if forward then Printf.sprintf "%s = %s" (qualified j.left a) (qualified j.right b)
              else Printf.sprintf "%s = %s" (qualified j.right b) (qualified j.left a))
            j.on
        in
        let restrict =
          if forward then
            List.map
              (fun (attr, v) -> Printf.sprintf "%s = %s" (qualified j.right attr) (literal v))
              j.right_restrict
          else []
        in
        join_clauses :=
          Printf.sprintf "  %s %s ON %s" kind (quote_ident fresh)
            (String.concat " AND " (on @ restrict))
          :: !join_clauses;
        joined := fresh :: !joined;
        grow ()
    in
    grow ();
    Printf.sprintf "SELECT %s\nFROM %s%s"
      (String.concat ",\n       " projections)
      (quote_ident start)
      (match List.rev !join_clauses with
      | [] -> ""
      | clauses -> "\n" ^ String.concat "\n" clauses)

let target_insert plan (mapping : Mapping_gen.target_mapping) =
  let non_empty =
    List.filter
      (fun (c : Mapping_gen.component) -> c.Mapping_gen.correspondences <> [])
      mapping.Mapping_gen.components
  in
  if non_empty = [] then
    Printf.sprintf "-- no matches found for target %s" mapping.Mapping_gen.target_table
  else begin
    let selects = List.map (component_select plan mapping) non_empty in
    Printf.sprintf "INSERT INTO %s\n%s;"
      (quote_ident mapping.Mapping_gen.target_table)
      (String.concat "\nUNION ALL\n" selects)
  end

let script (plan : Mapping_gen.plan) =
  let views = List.filter_map view_definition plan.Mapping_gen.relations in
  let inserts = List.map (target_insert plan) plan.Mapping_gen.mappings in
  String.concat "\n\n" (views @ inserts) ^ "\n"
