lib/mapping/propagation.ml: Condition Constraints Hashtbl List Relation Relational String Table Value
