lib/mapping/sql_render.mli: Mapping_gen Relation Relational
