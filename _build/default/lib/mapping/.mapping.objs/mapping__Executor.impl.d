lib/mapping/executor.ml: Array Association Attribute Hashtbl List Printf Relation Relational Schema String Table Value
