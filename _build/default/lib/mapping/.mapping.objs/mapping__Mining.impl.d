lib/mapping/mining.ml: Array Condition Constraints Hashtbl List Relation Relational String Table
