lib/mapping/constraints.ml: Array Format Hashtbl List Printf Relational Schema String Table Value
