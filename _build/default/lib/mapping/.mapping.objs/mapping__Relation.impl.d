lib/mapping/relation.ml: Condition Format Relational Schema Sp_query Table View
