lib/mapping/mining.mli: Constraints Relation
