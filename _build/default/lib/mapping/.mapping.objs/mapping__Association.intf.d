lib/mapping/association.mli: Constraints Propagation Relation Relational Value
