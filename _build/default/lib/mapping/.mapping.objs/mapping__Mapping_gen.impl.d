lib/mapping/mapping_gen.ml: Array Association Attribute Constraints Database Executor Hashtbl List Matching Mining Option Printf Propagation Relation Relational Schema String Table Value View
