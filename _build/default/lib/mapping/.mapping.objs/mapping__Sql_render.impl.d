lib/mapping/sql_render.ml: Association Buffer Condition Database List Mapping_gen Printf Relation Relational Schema String Table Value
