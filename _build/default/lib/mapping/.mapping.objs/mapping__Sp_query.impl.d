lib/mapping/sp_query.ml: Condition Format Printf Relational Schema String Table
