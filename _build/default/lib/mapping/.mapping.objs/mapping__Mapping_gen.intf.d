lib/mapping/mapping_gen.mli: Association Constraints Database Matching Propagation Relation Relational Table Value
