lib/mapping/executor.mli: Association Relation Relational Table Value
