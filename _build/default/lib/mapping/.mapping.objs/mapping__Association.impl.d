lib/mapping/association.ml: Condition Constraints List Propagation Relation Relational String Value
