lib/mapping/relation.mli: Condition Format Relational Sp_query Table View
