lib/mapping/constraints.mli: Format Relational Table Value
