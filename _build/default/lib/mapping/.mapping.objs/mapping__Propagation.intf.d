lib/mapping/propagation.mli: Constraints Relation
