lib/mapping/sp_query.mli: Condition Format Relational Schema Table
