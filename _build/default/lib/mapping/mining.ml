open Relational

let mine_keys ?(max_width = 2) rel =
  let table = Relation.table rel in
  if Table.row_count table = 0 then []
  else begin
    let attrs = Relation.attributes rel in
    let singles =
      List.filter (fun a -> Table.is_unique table [ a ]) attrs
    in
    let keys = List.map (fun a -> { Constraints.rel = Relation.name rel; key_attrs = [ a ] }) singles in
    if max_width < 2 then keys
    else begin
      (* Minimal pairs: neither member is already a single-attribute key. *)
      let non_keys = List.filter (fun a -> not (List.mem a singles)) attrs in
      let rec pairs = function
        | [] -> []
        | a :: rest ->
          List.filter_map
            (fun b -> if Table.is_unique table [ a; b ] then Some [ a; b ] else None)
            rest
          @ pairs rest
      in
      keys
      @ List.map
          (fun key_attrs -> { Constraints.rel = Relation.name rel; key_attrs })
          (pairs non_keys)
    end
  end

let single_keys rel = mine_keys ~max_width:1 rel

let mine_foreign_keys relations =
  let candidates =
    List.concat_map
      (fun referenced ->
        List.map (fun k -> (referenced, k)) (single_keys referenced))
      relations
  in
  List.concat_map
    (fun referencing ->
      let table = Relation.table referencing in
      if Table.row_count table = 0 then []
      else
        List.concat_map
          (fun attr ->
            let non_null = Table.non_null_column table attr in
            if Array.length non_null = 0 then []
            else
              List.filter_map
                (fun (referenced, (k : Constraints.key)) ->
                  if String.equal (Relation.name referenced) (Relation.name referencing) then
                    None
                  else begin
                    let fk =
                      {
                        Constraints.fk_rel = Relation.name referencing;
                        fk_attrs = [ attr ];
                        ref_rel = k.rel;
                        ref_attrs = k.key_attrs;
                      }
                    in
                    if Constraints.holds_fk table (Relation.table referenced) fk then Some fk
                    else None
                  end)
                candidates)
          (Relation.attributes referencing))
    relations

let view_selection_values rel =
  match Condition.selected_values (Relation.selection_condition rel) with
  | Some (attr, values) -> Some (attr, values)
  | None -> None

let mine_contextual_fks relations =
  let by_name = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace by_name (Relation.name r) r) relations;
  List.concat_map
    (fun view ->
      if not (Relation.is_view view) then []
      else
        match view_selection_values view with
        | None -> []
        | Some (ctx_attr, values) -> (
          match Hashtbl.find_opt by_name (Relation.base_name view) with
          | None -> []
          | Some base ->
            let base_keys = mine_keys base in
            (* keys of the base in which the selection attribute takes
               part: [X, a] with a = ctx_attr *)
            let with_ctx =
              List.filter_map
                (fun (k : Constraints.key) ->
                  if List.mem ctx_attr k.key_attrs then
                    Some (List.filter (fun a -> a <> ctx_attr) k.key_attrs)
                  else None)
                base_keys
            in
            List.concat_map
              (fun x_attrs ->
                if x_attrs = [] then []
                else
                  List.filter_map
                    (fun v ->
                      let cfk =
                        {
                          Constraints.cfk_rel = Relation.name view;
                          cfk_attrs = x_attrs;
                          ctx_attr;
                          ctx_value = v;
                          cfk_ref_rel = Relation.name base;
                          cfk_ref_attrs = x_attrs;
                          ref_ctx_attr = ctx_attr;
                        }
                      in
                      if
                        Constraints.holds_cfk (Relation.table view) (Relation.table base) cfk
                      then Some cfk
                      else None)
                    values)
              with_ctx))
    relations

let mine relations =
  List.concat_map (fun r -> List.map (fun k -> Constraints.Key k) (mine_keys r)) relations
  @ List.map (fun f -> Constraints.Fk f) (mine_foreign_keys relations)
  @ List.map (fun c -> Constraints.Cfk c) (mine_contextual_fks relations)
