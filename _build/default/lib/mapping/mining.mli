(** Constraint mining from sample data (§4.2 method (a): "employ
    constraint mining tools on sample data to discover keys and
    (contextual) foreign keys on views, as Clio does").

    Mining is necessarily heuristic — a key that holds on the sample may
    not hold in general — but it is how Clio seeds its join analysis. *)


val mine_keys : ?max_width:int -> Relation.t -> Constraints.key list
(** Minimal keys of the relation instance up to [max_width] attributes
    (default 2): all unique single attributes, plus unique pairs none of
    whose members is already a key. *)

val mine_foreign_keys : Relation.t list -> Constraints.foreign_key list
(** Single-attribute inclusion dependencies into mined single-attribute
    keys of other relations.  Requires the referencing column to be
    non-trivial (>= 1 non-null value) and complete containment on the
    sample. *)

val mine_contextual_fks : Relation.t list -> Constraints.contextual_fk list
(** For every view V = select ... from R where a = v (or a IN vs, one
    cfk per value) and every mined key [X, a] of the base in which the
    selection attribute participates: check V[X, a = v] ⊆ R[X, a] on
    the sample.  This complements the inference rules of
    {!Propagation}. *)

val mine : Relation.t list -> Constraints.t list
(** Everything above. *)
