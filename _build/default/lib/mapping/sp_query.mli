(** Select-project (SP) queries, the view-definition language of §4:
    [select Y from R where c].  [select = None] keeps all attributes. *)

open Relational

type t = {
  select : string list option;
  from : string;
  where : Condition.t;
}

val select_all : string -> Condition.t -> t
val select_some : string list -> string -> Condition.t -> t

val output_attributes : t -> Schema.t -> string list
(** Attribute names of the query's output given the base schema. *)

val eval : t -> Table.t -> Table.t
(** Run against an instance of the base table; the result keeps the base
    table's name (rename it as needed).  Raises [Invalid_argument] when
    the instance's name differs from [from]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
