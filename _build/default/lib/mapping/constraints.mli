(** Keys, foreign keys and contextual foreign keys (paper §4.2).

    A contextual foreign key V[Y, a = v] ⊆ R[X, B] states: for every
    tuple t1 of the view V, there is a tuple t of R with t1[Y] = t[X]
    and t[B] = v — i.e. the view's Y attributes *augmented with the
    constant v for the selection attribute* reference R.  This is the
    new constraint form the paper introduces; no prior work had it. *)

open Relational

type key = { rel : string; key_attrs : string list }

type foreign_key = {
  fk_rel : string;
  fk_attrs : string list;
  ref_rel : string;
  ref_attrs : string list;
}

type contextual_fk = {
  cfk_rel : string;  (** the view V *)
  cfk_attrs : string list;  (** Y *)
  ctx_attr : string;  (** a — the selection attribute (not in att(V) when projected away) *)
  ctx_value : Value.t;  (** v *)
  cfk_ref_rel : string;  (** R *)
  cfk_ref_attrs : string list;  (** X *)
  ref_ctx_attr : string;  (** B *)
}

type t =
  | Key of key
  | Fk of foreign_key
  | Cfk of contextual_fk

val key : string -> string list -> t
val fk : string -> string list -> string -> string list -> t

val cfk :
  rel:string ->
  attrs:string list ->
  ctx_attr:string ->
  ctx_value:Value.t ->
  ref_rel:string ->
  ref_attrs:string list ->
  ref_ctx_attr:string ->
  t

val rel_of : t -> string
(** The relation the constraint is declared on. *)

val holds_key : Table.t -> key -> bool
(** Check a key on an instance. *)

val holds_fk : Table.t -> Table.t -> foreign_key -> bool
(** [holds_fk referencing referenced fk]; rows with a null in the
    referencing attributes are exempt (SQL semantics). *)

val holds_cfk : Table.t -> Table.t -> contextual_fk -> bool
(** [holds_cfk view_instance referenced cfk]. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
