(** Sound inference rules for propagating constraints from base tables
    to views (paper §4.2).

    Theorem 4.1 shows the general propagation problem is undecidable for
    SP views, so the paper (and we) combine mining on samples with a
    sound-but-incomplete rule set:

    - [selection-propagation]: a key of R all of whose attributes
      survive into V is a key of V (selection only removes rows).
    - [contextual-propagation]: if R[X, a] is a key and V selects a = v,
      then V[X] is a key of V.
    - [view-referencing]: if R[X] is a key of R, a ∈ X, V selects
      a = v1 or ... or a = vn, and the domain of a is exactly
      {v1..vn}, then R[X] ⊆ V[X] (the base references the view).
    - [contextual-constraint]: if R[X, a] is a key and V selects a = v,
      then V[X, a = v] ⊆ R[X, a] is a contextual foreign key.
    - [fk-propagation]: a base foreign key R[Y] ⊆ R'[X] with
      Y ⊆ att(V) propagates to V[Y] ⊆ R'[X]. *)

type derived = {
  constr : Constraints.t;
  rule : string;  (** name of the inference rule that produced it *)
}

val derive : relations:Relation.t list -> base:Constraints.t list -> derived list
(** Apply all rules to every view relation.  Domain checks for
    view-referencing use the base relation's sample instance.  Results
    are deduplicated. *)

val derived_keys : derived list -> Constraints.key list
val derived_fks : derived list -> Constraints.foreign_key list
val derived_cfks : derived list -> Constraints.contextual_fk list
