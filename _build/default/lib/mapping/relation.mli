(** Relations of the mapping world: base tables, or views with their
    lineage (defining SP query over a base table).  Views carry a
    materialised instance so the constraint miner and the executor can
    look at data, but the lineage is what the §4.2 inference rules
    reason over. *)

open Relational

type origin =
  | Base
  | View_of of { base : string; query : Sp_query.t }

type t = {
  name : string;
  table : Table.t;  (** the (materialised) instance, named [name] *)
  origin : origin;
}

val base : Table.t -> t
val of_view : ?name:string -> View.t -> t
(** Lineage = select * from base where condition. *)

val of_query : name:string -> Sp_query.t -> Table.t -> t
(** [of_query ~name q base_instance] evaluates [q] and wraps the result. *)

val name : t -> string
val table : t -> Table.t
val attributes : t -> string list
val is_view : t -> bool

val selection_condition : t -> Condition.t
(** The view's where-condition; [True] for base relations. *)

val base_name : t -> string
(** The underlying base table ([name] itself for base relations). *)

val pp : Format.formatter -> t -> unit
