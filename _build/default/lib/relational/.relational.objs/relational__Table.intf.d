lib/relational/table.mli: Attribute Format Schema Value
