lib/relational/categorical.ml: Float List Schema Table
