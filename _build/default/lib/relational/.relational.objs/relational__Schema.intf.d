lib/relational/schema.mli: Attribute Format
