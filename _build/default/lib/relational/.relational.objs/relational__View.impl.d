lib/relational/view.ml: Array Condition Format List Printf Schema Table
