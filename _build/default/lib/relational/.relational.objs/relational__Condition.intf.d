lib/relational/condition.mli: Format Schema Table Value
