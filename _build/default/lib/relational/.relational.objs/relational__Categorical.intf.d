lib/relational/categorical.mli: Table
