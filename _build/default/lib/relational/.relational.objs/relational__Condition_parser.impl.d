lib/relational/condition_parser.ml: Buffer Condition List Printf String Value
