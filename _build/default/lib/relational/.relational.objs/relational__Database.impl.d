lib/relational/database.ml: Format Hashtbl List Printf Schema String Table
