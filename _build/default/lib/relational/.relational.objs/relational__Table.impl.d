lib/relational/table.ml: Array Format Hashtbl Int List Printf Schema Value
