lib/relational/condition_parser.mli: Condition
