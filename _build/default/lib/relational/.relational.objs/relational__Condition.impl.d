lib/relational/condition.ml: Array Format List Printf Schema String Value
