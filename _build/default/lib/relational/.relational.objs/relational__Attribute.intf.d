lib/relational/attribute.mli: Format Value
