lib/relational/csv_io.ml: Array Attribute Buffer List Schema String Table Value
