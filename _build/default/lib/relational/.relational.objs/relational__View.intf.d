lib/relational/view.mli: Condition Format Schema Table Value
