lib/relational/database.mli: Format Table
