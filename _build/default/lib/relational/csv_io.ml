exception Parse_error of { line : int; message : string }

let parse_string ?(separator = ',') text =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 64 in
  let line = ref 1 in
  let n = String.length text in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let push_record () =
    push_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  (* States: 0 = unquoted, 1 = inside quotes, 2 = just saw a quote while
     inside quotes (either the closing quote or the first of a doubled
     quote). *)
  let rec go i state =
    if i >= n then begin
      match state with
      | 1 -> raise (Parse_error { line = !line; message = "unterminated quoted field" })
      | 0 | 2 | _ ->
        if Buffer.length buf > 0 || !fields <> [] then push_record ()
    end
    else begin
      let c = text.[i] in
      match state with
      | 0 ->
        if c = separator then begin push_field (); go (i + 1) 0 end
        else if c = '"' && Buffer.length buf = 0 then go (i + 1) 1
        else if c = '\n' then begin incr line; push_record (); go (i + 1) 0 end
        else if c = '\r' then
          if i + 1 < n && text.[i + 1] = '\n' then begin
            incr line;
            push_record ();
            go (i + 2) 0
          end
          else begin incr line; push_record (); go (i + 1) 0 end
        else begin Buffer.add_char buf c; go (i + 1) 0 end
      | 1 ->
        if c = '"' then go (i + 1) 2
        else begin
          if c = '\n' then incr line;
          Buffer.add_char buf c;
          go (i + 1) 1
        end
      | 2 | _ ->
        if c = '"' then begin Buffer.add_char buf '"'; go (i + 1) 1 end
        else go i 0
    end
  in
  go 0 0;
  List.rev !records

let parse_file ?separator path =
  let ic = open_in_bin path in
  let text =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  parse_string ?separator text

let needs_quoting separator field =
  String.exists (fun c -> c = separator || c = '"' || c = '\n' || c = '\r') field

let render_field separator field =
  if needs_quoting separator field then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let to_string ?(separator = ',') records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun record ->
      Buffer.add_string buf
        (String.concat (String.make 1 separator) (List.map (render_field separator) record));
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let write_file ?separator path records =
  let oc = open_out_bin path in
  output_string oc (to_string ?separator records);
  close_out oc

let infer_column_type fields =
  let non_empty = List.filter (fun s -> String.trim s <> "") fields in
  if non_empty = [] then Value.Tstring
  else begin
    let all p = List.for_all p non_empty in
    if all (fun s -> int_of_string_opt (String.trim s) <> None) then Value.Tint
    else if all (fun s -> float_of_string_opt (String.trim s) <> None) then Value.Tfloat
    else if
      all (fun s ->
          match String.lowercase_ascii (String.trim s) with
          | "true" | "false" -> true
          | _ -> false)
    then Value.Tbool
    else Value.Tstring
  end

let table_of_csv ?separator ~name text =
  match parse_string ?separator text with
  | [] -> invalid_arg "Csv_io.table_of_csv: empty input"
  | header :: data ->
    let width = List.length header in
    let normalized =
      List.map
        (fun record ->
          let len = List.length record in
          if len = width then record
          else if len < width then record @ List.init (width - len) (fun _ -> "")
          else List.filteri (fun i _ -> i < width) record)
        data
    in
    let column i = List.map (fun record -> List.nth record i) normalized in
    let types = List.init width (fun i -> infer_column_type (column i)) in
    let attrs = List.map2 Attribute.make header types in
    let schema = Schema.make name attrs in
    let rows =
      List.map
        (fun record ->
          Array.of_list (List.map2 (fun ty field -> Value.of_string_as ty field) types record))
        normalized
    in
    Table.make schema rows

let table_of_file ?separator ~name path =
  let ic = open_in_bin path in
  let text =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  table_of_csv ?separator ~name text

let table_to_csv ?separator table =
  let header = Schema.attribute_names (Table.schema table) in
  let rows =
    Array.to_list (Table.rows table)
    |> List.map (fun row -> Array.to_list (Array.map Value.to_string row))
  in
  to_string ?separator (header :: rows)
