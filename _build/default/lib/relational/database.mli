(** A database (the paper's calligraphic R): a named collection of table
    instances. *)

type t

val make : string -> Table.t list -> t
(** Raises [Invalid_argument] on duplicate table names. *)

val name : t -> string
val tables : t -> Table.t list
val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option
val mem : t -> string -> bool
val table_names : t -> string list
val add_table : t -> Table.t -> t
val replace_table : t -> Table.t -> t
(** Replace the table with the same name; adds it if absent. *)

val map_tables : (Table.t -> Table.t) -> t -> t
val total_rows : t -> int
val total_attributes : t -> int
val pp : Format.formatter -> t -> unit
