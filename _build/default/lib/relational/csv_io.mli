(** Minimal RFC-4180 CSV reader/writer with type inference.

    Used by the CLI to load user-supplied samples and by tests for
    round-tripping.  Handles quoted fields, embedded quotes (doubled),
    embedded separators and newlines inside quotes, and both LF and CRLF
    line endings. *)

exception Parse_error of { line : int; message : string }

val parse_string : ?separator:char -> string -> string list list
(** Raw records as string fields.  Raises {!Parse_error} on an unclosed
    quote. *)

val parse_file : ?separator:char -> string -> string list list

val to_string : ?separator:char -> string list list -> string
(** Render records; fields containing the separator, quotes or newlines
    are quoted, quotes doubled. *)

val write_file : ?separator:char -> string -> string list list -> unit

val table_of_csv : ?separator:char -> name:string -> string -> Table.t
(** Parse CSV text whose first record is the header; column types are
    inferred from the data (int if all non-empty fields parse as int,
    else float, else bool, else string).  Empty fields become nulls. *)

val table_of_file : ?separator:char -> name:string -> string -> Table.t

val table_to_csv : ?separator:char -> Table.t -> string
(** Header + rows in display form. *)
