(** Boolean selection conditions attached to contextual matches.

    The paper (§2.2) classifies conditions by the number of attributes
    they mention: a simple condition is [a = v] (a 1-condition); a simple
    disjunctive condition is [a IN {v1..vk}]; conjunctive and general
    k-conditions combine these. *)

type t =
  | True
  | Eq of string * Value.t  (** simple condition: attribute = constant *)
  | In of string * Value.t list  (** simple disjunctive condition *)
  | And of t * t
  | Or of t * t
  | Not of t

val eval : t -> Schema.t -> Table.row -> bool
(** Evaluate against a row; comparisons with null are false.  Raises
    [Not_found] if the condition mentions an attribute absent from the
    schema. *)

val attributes : t -> string list
(** Attribute names mentioned, sorted, without duplicates. *)

val arity : t -> int
(** The paper's k: number of distinct attributes mentioned (0 for
    [True]). *)

val is_simple : t -> bool
(** True for [Eq] (and [True]). *)

val is_simple_disjunctive : t -> bool
(** True for [True], [Eq], [In] and [Or]-combinations over a single
    attribute. *)

val conjoin : t -> t -> t
(** Conjunction with [True] simplification. *)

val disjoin_values : string -> Value.t list -> t
(** [a IN vs], simplified to [Eq] when singleton and to [True]'s negation
    ([In (a, [])], never true) when empty. *)

val selected_values : t -> (string * Value.t list) option
(** When the condition is a simple or simple-disjunctive condition over
    one attribute (possibly via [Or]/[In] nesting), return the attribute
    and the sorted list of selected values. *)

val normalize : t -> t
(** Flatten nested [Or]-of-[Eq] over a single attribute into [In]; sort
    [In] value lists; drop [And True]. *)

val equal : t -> t -> bool
(** Structural equality after {!normalize}. *)

val to_string : t -> string
(** SQL-ish rendering, e.g. ["type = 1"] or ["type IN (1, 2)"]. *)

val pp : Format.formatter -> t -> unit
