type t =
  | True
  | Eq of string * Value.t
  | In of string * Value.t list
  | And of t * t
  | Or of t * t
  | Not of t

let rec eval cond schema row =
  match cond with
  | True -> true
  | Eq (attr, v) ->
    let cell = row.(Schema.index_of schema attr) in
    (not (Value.is_null cell)) && Value.equal cell v
  | In (attr, vs) ->
    let cell = row.(Schema.index_of schema attr) in
    (not (Value.is_null cell)) && List.exists (Value.equal cell) vs
  | And (a, b) -> eval a schema row && eval b schema row
  | Or (a, b) -> eval a schema row || eval b schema row
  | Not a -> not (eval a schema row)

let attributes cond =
  let rec collect acc = function
    | True -> acc
    | Eq (attr, _) | In (attr, _) -> attr :: acc
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
    | Not a -> collect acc a
  in
  collect [] cond |> List.sort_uniq String.compare

let arity cond = List.length (attributes cond)

let is_simple = function
  | True | Eq _ -> true
  | In _ | And _ | Or _ | Not _ -> false

let rec is_simple_disjunctive cond =
  match cond with
  | True | Eq _ | In _ -> arity cond <= 1
  | Or (a, b) -> is_simple_disjunctive a && is_simple_disjunctive b && arity cond <= 1
  | And _ | Not _ -> false

let conjoin a b =
  match (a, b) with
  | True, c | c, True -> c
  | _, _ -> And (a, b)

let disjoin_values attr vs =
  match List.sort_uniq Value.compare vs with
  | [ v ] -> Eq (attr, v)
  | vs -> In (attr, vs)

let selected_values cond =
  let rec collect = function
    | Eq (attr, v) -> Some (attr, [ v ])
    | In (attr, vs) -> Some (attr, vs)
    | Or (a, b) -> (
      match (collect a, collect b) with
      | Some (attr1, vs1), Some (attr2, vs2) when String.equal attr1 attr2 ->
        Some (attr1, vs1 @ vs2)
      | _, _ -> None)
    | True | And _ | Not _ -> None
  in
  match collect cond with
  | Some (attr, vs) -> Some (attr, List.sort_uniq Value.compare vs)
  | None -> None

let rec normalize cond =
  match cond with
  | True | Eq _ -> cond
  | In (attr, vs) -> disjoin_values attr vs
  | Not a -> Not (normalize a)
  | And (a, b) -> conjoin (normalize a) (normalize b)
  | Or (a, b) -> (
    match selected_values cond with
    | Some (attr, vs) -> disjoin_values attr vs
    | None -> Or (normalize a, normalize b))

let equal a b = normalize a = normalize b

let rec to_string = function
  | True -> "true"
  | Eq (attr, v) -> Printf.sprintf "%s = %s" attr (Value.to_string v)
  | In (attr, vs) ->
    Printf.sprintf "%s IN (%s)" attr (String.concat ", " (List.map Value.to_string vs))
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "NOT (%s)" (to_string a)

let pp fmt cond = Format.pp_print_string fmt (to_string cond)
