(** Categorical-attribute detection (paper §2.1).

    "We consider an attribute a to be categorical if more than 10% of the
    values of a are associated with more than 1% of the tuples in our
    sample.  In the case of small samples, at least two values must be
    associated with at least two tuples." *)

type params = {
  heavy_value_share : float;
      (** a value is "heavy" if it covers more than this fraction of the
          rows (paper: 0.01) *)
  heavy_fraction : float;
      (** the attribute is categorical if more than this fraction of its
          distinct values are heavy (paper: 0.10) *)
  min_heavy_values : int;  (** small-sample rule (paper: 2) *)
  min_rows_per_value : int;  (** small-sample rule (paper: 2) *)
  max_cardinality : int;
      (** reject attributes with more distinct values than this (default
          12) — an engineering guard that keeps NaiveInfer's view count
          bounded and excludes quasi-numeric columns like years *)
}

val default_params : params

val is_categorical : ?params:params -> Table.t -> string -> bool

val categorical_attributes : ?params:params -> Table.t -> string list
(** Cat(R): names of all categorical attributes of the table, in schema
    order. *)
