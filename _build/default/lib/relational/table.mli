(** Table instances: a schema plus sample rows.

    Rows are arrays of {!Value.t} positionally aligned with the schema.
    Instances in this library are always the *samples* the matcher sees
    (paper §2.1: "given an instance of R (a sample input)"). *)

type row = Value.t array

type t

val make : Schema.t -> row list -> t
(** Raises [Invalid_argument] if any row's arity differs from the
    schema's. *)

val of_rows : Schema.t -> row array -> t
val schema : t -> Schema.t
val name : t -> string
val rows : t -> row array
val row_count : t -> int
val arity : t -> int

val cell : t -> int -> string -> Value.t
(** [cell t i attr] — value of [attr] in row [i]. *)

val column : t -> string -> Value.t array
(** Bag of values of an attribute, v(R, a) in the paper's notation. *)

val column_by_index : t -> int -> Value.t array

val non_null_column : t -> string -> Value.t array
(** Column with nulls removed. *)

val distinct_values : t -> string -> Value.t list
(** Distinct non-null values, sorted by {!Value.compare}. *)

val value_counts : t -> string -> (Value.t * int) list
(** Distinct non-null values with multiplicities, sorted by decreasing
    count then by value. *)

val filter : t -> (row -> bool) -> t
(** Rows satisfying a predicate, same schema. *)

val project : t -> string list -> t
(** Keep listed attributes in the listed order. *)

val rename : t -> string -> t

val append_column : t -> Attribute.t -> (row -> Value.t) -> t
(** Derived column appended on the right. *)

val take : t -> int -> t
(** First [n] rows (all of them if fewer). *)

val sub_by_indices : t -> int array -> t
(** Rows at the given positions, in the given order. *)

val concat_rows : t -> t -> t
(** Union of rows; schemas must be equal. *)

val is_unique : t -> string list -> bool
(** True when the listed attributes form a key of the instance (no two
    rows agree on all of them; nulls compare as values). *)

val pp : Format.formatter -> t -> unit
(** Compact textual rendering (header + first rows), for debugging. *)
