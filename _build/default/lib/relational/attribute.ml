type t = { name : string; ty : Value.ty }

let make name ty = { name; ty }
let int name = { name; ty = Value.Tint }
let float name = { name; ty = Value.Tfloat }
let string name = { name; ty = Value.Tstring }
let bool name = { name; ty = Value.Tbool }

let equal a b = String.equal a.name b.name && a.ty = b.ty

let is_textual a = a.ty = Value.Tstring

let is_numeric a =
  match a.ty with
  | Value.Tint | Value.Tfloat -> true
  | Value.Tstring | Value.Tbool -> false

let pp fmt a = Format.fprintf fmt "%s:%s" a.name (Value.ty_to_string a.ty)
