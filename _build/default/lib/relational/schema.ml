type t = { name : string; attrs : Attribute.t array; index : (string, int) Hashtbl.t }

let build_index attrs =
  let index = Hashtbl.create (Array.length attrs) in
  Array.iteri
    (fun i (a : Attribute.t) ->
      if Hashtbl.mem index a.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %s" a.name);
      Hashtbl.add index a.name i)
    attrs;
  index

let make name attrs =
  let attrs = Array.of_list attrs in
  { name; attrs; index = build_index attrs }

let name t = t.name
let attributes t = t.attrs
let arity t = Array.length t.attrs

let index_of_opt t attr_name = Hashtbl.find_opt t.index attr_name

let index_of t attr_name =
  match index_of_opt t attr_name with Some i -> i | None -> raise Not_found

let attribute_opt t attr_name =
  match index_of_opt t attr_name with Some i -> Some t.attrs.(i) | None -> None

let attribute t attr_name = t.attrs.(index_of t attr_name)

let mem t attr_name = Hashtbl.mem t.index attr_name

let attribute_names t = Array.to_list (Array.map (fun (a : Attribute.t) -> a.name) t.attrs)

let rename t new_name = { t with name = new_name }

let project t names =
  let attrs = List.map (attribute t) names in
  make t.name attrs

let add_attribute t attr =
  make t.name (Array.to_list t.attrs @ [ attr ])

let equal a b =
  String.equal a.name b.name
  && Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 Attribute.equal a.attrs b.attrs

let pp fmt t =
  Format.fprintf fmt "%s(%a)" t.name
    (Format.pp_print_array
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Attribute.pp)
    t.attrs
