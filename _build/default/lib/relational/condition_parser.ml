exception Parse_error of string

type token =
  | Ident of string
  | Val of Value.t
  | Lparen
  | Rparen
  | Comma
  | Equals
  | Kw_and
  | Kw_or
  | Kw_not
  | Kw_in
  | Kw_true

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-' || c = '+'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' -> push Lparen; go (i + 1)
      | ')' -> push Rparen; go (i + 1)
      | ',' -> push Comma; go (i + 1)
      | '=' -> push Equals; go (i + 1)
      | '\'' ->
        (* single-quoted string literal; '' escapes a quote *)
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Parse_error "unterminated string literal")
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        let next = scan (i + 1) in
        push (Val (Value.String (Buffer.contents buf)));
        go next
      | '"' ->
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Parse_error "unterminated quoted identifier")
          else if input.[j] = '"' then
            if j + 1 < n && input.[j + 1] = '"' then begin
              Buffer.add_char buf '"';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        let next = scan (i + 1) in
        push (Ident (Buffer.contents buf));
        go next
      | c when is_word_char c ->
        let j = ref i in
        while !j < n && is_word_char input.[!j] do incr j done;
        let word = String.sub input i (!j - i) in
        (match String.uppercase_ascii word with
        | "AND" -> push Kw_and
        | "OR" -> push Kw_or
        | "NOT" -> push Kw_not
        | "IN" -> push Kw_in
        | "TRUE" -> push Kw_true
        | _ -> push (Ident word));
        go !j
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %c" c))
  in
  go 0;
  List.rev !tokens

(* A bare word in value position is interpreted like Value.infer: int,
   float, bool, else string. *)
let value_of_ident word = Value.infer word

let parse input =
  let tokens = ref (tokenize input) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let expect t message =
    match peek () with
    | Some t' when t' = t -> advance ()
    | _ -> raise (Parse_error message)
  in
  let parse_value () =
    match peek () with
    | Some (Val v) -> advance (); v
    | Some (Ident w) -> advance (); value_of_ident w
    | Some Kw_true -> advance (); Value.Bool true
    | _ -> raise (Parse_error "expected a value")
  in
  let rec parse_or () =
    let left = parse_and () in
    match peek () with
    | Some Kw_or ->
      advance ();
      Condition.Or (left, parse_or ())
    | _ -> left
  and parse_and () =
    let left = parse_unary () in
    match peek () with
    | Some Kw_and ->
      advance ();
      Condition.And (left, parse_and ())
    | _ -> left
  and parse_unary () =
    match peek () with
    | Some Kw_not ->
      advance ();
      Condition.Not (parse_unary ())
    | Some Kw_true -> advance (); Condition.True
    | Some Lparen ->
      advance ();
      let inner = parse_or () in
      expect Rparen "expected )";
      inner
    | Some (Ident attr) -> (
      advance ();
      match peek () with
      | Some Equals ->
        advance ();
        Condition.Eq (attr, parse_value ())
      | Some Kw_in ->
        advance ();
        expect Lparen "expected ( after IN";
        let rec values acc =
          let v = parse_value () in
          match peek () with
          | Some Comma ->
            advance ();
            values (v :: acc)
          | Some Rparen ->
            advance ();
            List.rev (v :: acc)
          | _ -> raise (Parse_error "expected , or ) in IN list")
        in
        Condition.In (attr, values [])
      | _ -> raise (Parse_error (Printf.sprintf "expected = or IN after %s" attr)))
    | _ -> raise (Parse_error "expected a condition")
  in
  let result = parse_or () in
  if !tokens <> [] then raise (Parse_error "trailing input after condition");
  result

let parse_opt input = try Some (parse input) with Parse_error _ -> None
