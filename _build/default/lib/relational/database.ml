type t = { name : string; tables : Table.t list }

let make name tables =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun tbl ->
      let n = Table.name tbl in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Database.make: duplicate table %s" n);
      Hashtbl.add seen n ())
    tables;
  { name; tables }

let name t = t.name
let tables t = t.tables

let table_opt t table_name =
  List.find_opt (fun tbl -> String.equal (Table.name tbl) table_name) t.tables

let table t table_name =
  match table_opt t table_name with Some tbl -> tbl | None -> raise Not_found

let mem t table_name = table_opt t table_name <> None

let table_names t = List.map Table.name t.tables

let add_table t tbl = make t.name (t.tables @ [ tbl ])

let replace_table t tbl =
  let target = Table.name tbl in
  if mem t target then
    {
      t with
      tables =
        List.map (fun existing -> if Table.name existing = target then tbl else existing) t.tables;
    }
  else add_table t tbl

let map_tables f t = { t with tables = List.map f t.tables }

let total_rows t = List.fold_left (fun acc tbl -> acc + Table.row_count tbl) 0 t.tables

let total_attributes t = List.fold_left (fun acc tbl -> acc + Table.arity tbl) 0 t.tables

let pp fmt t =
  Format.fprintf fmt "database %s:" t.name;
  List.iter (fun tbl -> Format.fprintf fmt "@\n  %a [%d rows]" Schema.pp (Table.schema tbl) (Table.row_count tbl)) t.tables
