(** Select-only views: [select * from R where c] (paper §2.1).

    During the contextual-match search views are *not* materialised;
    a view is a base table plus a condition, and matchers pull filtered
    columns on demand.  {!materialize} exists for the mapping executor
    and for tests. *)

type t

val make : ?name:string -> Table.t -> Condition.t -> t
(** The default name is ["<base> where <cond>"]. *)

val base : t -> Table.t
val condition : t -> Condition.t
val name : t -> string
val schema : t -> Schema.t
(** Schema of the view's output — same as the base table's, renamed. *)

val row_indices : t -> int array
(** Indices of base-table rows satisfying the condition (computed once
    and cached). *)

val row_count : t -> int
val column : t -> string -> Value.t array
val materialize : t -> Table.t
val selectivity : t -> float
(** Fraction of base rows selected; 0 when the base is empty. *)

val pp : Format.formatter -> t -> unit

(** {2 View families}

    A view family [(R, l, views)] partitions R by the values of one
    categorical attribute l (paper §3.2.2). *)

type family = {
  table : Table.t;  (** base table *)
  attribute : string;  (** the categorical attribute l *)
  views : t list;  (** mutually exclusive views over l *)
  quality : float;  (** classifier F-measure that justified the family *)
}

val family_of_values : ?quality:float -> Table.t -> string -> Value.t list list -> family
(** [family_of_values tbl l groups] builds one view per group of values
    of [l]: a singleton group yields a simple condition, a larger group
    a simple-disjunctive one. *)

val partition_family : ?quality:float -> Table.t -> string -> family
(** One view per distinct value of the attribute in the sample. *)
