type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type ty = Tint | Tfloat | Tstring | Tbool

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | String _ -> Some Tstring
  | Bool _ -> Some Tbool

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

let ty_of_string s =
  match String.lowercase_ascii s with
  | "int" | "integer" -> Some Tint
  | "float" | "real" | "double" -> Some Tfloat
  | "string" | "text" | "varchar" -> Some Tstring
  | "bool" | "boolean" -> Some Tbool
  | _ -> None

(* Rank for the cross-type order; numerics share a rank and compare by
   their float image. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | String _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let is_null = function Null -> true | Bool _ | Int _ | Float _ | String _ -> false

let to_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | String s -> s
  | Bool b -> string_of_bool b

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | String _ -> None

let of_string_as ty s =
  if String.length s = 0 then Null
  else
    match ty with
    | Tint -> (match int_of_string_opt (String.trim s) with Some i -> Int i | None -> Null)
    | Tfloat -> (match float_of_string_opt (String.trim s) with Some f -> Float f | None -> Null)
    | Tbool -> (
      match String.lowercase_ascii (String.trim s) with
      | "true" | "1" | "yes" -> Bool true
      | "false" | "0" | "no" -> Bool false
      | _ -> Null)
    | Tstring -> String s

let infer s =
  if String.length s = 0 then Null
  else
    let trimmed = String.trim s in
    match int_of_string_opt trimmed with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt trimmed with
      | Some f -> Float f
      | None -> (
        match String.lowercase_ascii trimmed with
        | "true" -> Bool true
        | "false" -> Bool false
        | _ -> String s))

let pp fmt v = Format.pp_print_string fmt (to_string v)
let pp_ty fmt ty = Format.pp_print_string fmt (ty_to_string ty)
