(** Table schemas: a named, ordered list of attributes. *)

type t

val make : string -> Attribute.t list -> t
(** Raises [Invalid_argument] on duplicate attribute names. *)

val name : t -> string
val attributes : t -> Attribute.t array
val arity : t -> int

val attribute : t -> string -> Attribute.t
(** Lookup by name; raises [Not_found]. *)

val attribute_opt : t -> string -> Attribute.t option

val index_of : t -> string -> int
(** Column position of an attribute; raises [Not_found]. *)

val index_of_opt : t -> string -> int option
val mem : t -> string -> bool
val attribute_names : t -> string list

val rename : t -> string -> t
(** New schema identical up to the table name. *)

val project : t -> string list -> t
(** Keep only the listed attributes, in the listed order.  Raises
    [Not_found] on unknown names. *)

val add_attribute : t -> Attribute.t -> t
(** Append a column; raises [Invalid_argument] on a duplicate name. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
