(** Attribute (column) descriptors: a name and a declared type. *)

type t = { name : string; ty : Value.ty }

val make : string -> Value.ty -> t
val int : string -> t
val float : string -> t
val string : string -> t
val bool : string -> t

val equal : t -> t -> bool

val is_textual : t -> bool
(** True for string attributes (candidates for q-gram matchers). *)

val is_numeric : t -> bool
(** True for int/float attributes (candidates for numeric matchers). *)

val pp : Format.formatter -> t -> unit
