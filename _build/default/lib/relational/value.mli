(** Typed atomic values stored in table cells.

    The paper's data model (§2.1) draws attribute types from
    (string, int, real, ...); we add booleans and an explicit null. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type ty = Tint | Tfloat | Tstring | Tbool

val type_of : t -> ty option
(** [None] for [Null]. *)

val ty_to_string : ty -> string

val ty_of_string : string -> ty option
(** Parses "int" / "float" / "real" / "string" / "bool" (case-insensitive). *)

val compare : t -> t -> int
(** Total order: Null < Bool < Int ~ Float (numeric comparison) < String.
    Ints and floats compare numerically so [Int 2 = Float 2.0]. *)

val equal : t -> t -> bool

val hash : t -> int
(** Consistent with [equal] (numeric values hash via their float image). *)

val is_null : t -> bool

val to_string : t -> string
(** Display form; [Null] prints as the empty string. *)

val to_float : t -> float option
(** Numeric view of ints, floats and bools; [None] otherwise. *)

val of_string_as : ty -> string -> t
(** [of_string_as ty s] parses [s] at type [ty]; the empty string becomes
    [Null]; unparseable input also becomes [Null]. *)

val infer : string -> t
(** Best-effort parse: int, then float, then bool, else string; the empty
    string is [Null]. *)

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
