type row = Value.t array

type t = { schema : Schema.t; rows : row array }

let check_row schema row =
  if Array.length row <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Table: row arity %d does not match schema %s (arity %d)"
         (Array.length row) (Schema.name schema) (Schema.arity schema))

let of_rows schema rows =
  Array.iter (check_row schema) rows;
  { schema; rows }

let make schema rows = of_rows schema (Array.of_list rows)

let schema t = t.schema
let name t = Schema.name t.schema
let rows t = t.rows
let row_count t = Array.length t.rows
let arity t = Schema.arity t.schema

let cell t i attr = t.rows.(i).(Schema.index_of t.schema attr)

let column_by_index t i = Array.map (fun row -> row.(i)) t.rows

let column t attr = column_by_index t (Schema.index_of t.schema attr)

let non_null_column t attr =
  column t attr |> Array.to_list |> List.filter (fun v -> not (Value.is_null v)) |> Array.of_list

let value_counts t attr =
  let table = Hashtbl.create 64 in
  Array.iter
    (fun v ->
      if not (Value.is_null v) then begin
        let n = try Hashtbl.find table v with Not_found -> 0 in
        Hashtbl.replace table v (n + 1)
      end)
    (column t attr);
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) table []
  |> List.sort (fun (v1, n1) (v2, n2) ->
         match Int.compare n2 n1 with 0 -> Value.compare v1 v2 | c -> c)

let distinct_values t attr =
  value_counts t attr |> List.map fst |> List.sort Value.compare

let filter t pred = { t with rows = Array.of_list (List.filter pred (Array.to_list t.rows)) }

let project t names =
  let indices = List.map (Schema.index_of t.schema) names in
  let schema = Schema.project t.schema names in
  let rows = Array.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) indices)) t.rows in
  { schema; rows }

let rename t new_name = { t with schema = Schema.rename t.schema new_name }

let append_column t attr derive =
  let schema = Schema.add_attribute t.schema attr in
  let rows = Array.map (fun row -> Array.append row [| derive row |]) t.rows in
  { schema; rows }

let take t n =
  let n = min n (Array.length t.rows) in
  { t with rows = Array.sub t.rows 0 n }

let sub_by_indices t indices = { t with rows = Array.map (fun i -> t.rows.(i)) indices }

let concat_rows a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Table.concat_rows: schemas differ";
  { a with rows = Array.append a.rows b.rows }

let is_unique t attrs =
  let indices = List.map (Schema.index_of t.schema) attrs in
  let seen = Hashtbl.create (Array.length t.rows) in
  let duplicate = ref false in
  Array.iter
    (fun row ->
      if not !duplicate then begin
        let key = List.map (fun i -> Value.to_string row.(i)) indices in
        if Hashtbl.mem seen key then duplicate := true else Hashtbl.add seen key ()
      end)
    t.rows;
  not !duplicate

let pp fmt t =
  Format.fprintf fmt "%a [%d rows]" Schema.pp t.schema (row_count t);
  let shown = min 5 (row_count t) in
  for i = 0 to shown - 1 do
    Format.fprintf fmt "@\n  (%a)"
      (Format.pp_print_array
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         Value.pp)
      t.rows.(i)
  done
