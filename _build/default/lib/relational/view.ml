type t = {
  base : Table.t;
  condition : Condition.t;
  name : string;
  mutable indices : int array option;
}

let make ?name base condition =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s where %s" (Table.name base) (Condition.to_string condition)
  in
  { base; condition; name; indices = None }

let base t = t.base
let condition t = t.condition
let name t = t.name
let schema t = Schema.rename (Table.schema t.base) t.name

let row_indices t =
  match t.indices with
  | Some idx -> idx
  | None ->
    let schema = Table.schema t.base in
    let rows = Table.rows t.base in
    let selected = ref [] in
    for i = Array.length rows - 1 downto 0 do
      if Condition.eval t.condition schema rows.(i) then selected := i :: !selected
    done;
    let idx = Array.of_list !selected in
    t.indices <- Some idx;
    idx

let row_count t = Array.length (row_indices t)

let column t attr =
  let i = Schema.index_of (Table.schema t.base) attr in
  let rows = Table.rows t.base in
  Array.map (fun r -> rows.(r).(i)) (row_indices t)

let materialize t = Table.rename (Table.sub_by_indices t.base (row_indices t)) t.name

let selectivity t =
  let n = Table.row_count t.base in
  if n = 0 then 0.0 else float_of_int (row_count t) /. float_of_int n

let pp fmt t =
  Format.fprintf fmt "view %s [%d/%d rows]" t.name (row_count t) (Table.row_count t.base)

type family = {
  table : Table.t;
  attribute : string;
  views : t list;
  quality : float;
}

let family_of_values ?(quality = 0.0) table attribute groups =
  let views =
    List.map
      (fun group -> make table (Condition.disjoin_values attribute group))
      (List.filter (fun g -> g <> []) groups)
  in
  { table; attribute; views; quality }

let partition_family ?(quality = 0.0) table attribute =
  let values = Table.distinct_values table attribute in
  family_of_values ~quality table attribute (List.map (fun v -> [ v ]) values)
