type params = {
  heavy_value_share : float;
  heavy_fraction : float;
  min_heavy_values : int;
  min_rows_per_value : int;
  max_cardinality : int;
}

let default_params =
  {
    heavy_value_share = 0.01;
    heavy_fraction = 0.10;
    min_heavy_values = 2;
    min_rows_per_value = 2;
    max_cardinality = 12;
  }

let is_categorical ?(params = default_params) table attr =
  let counts = Table.value_counts table attr in
  let n = Table.row_count table in
  let distinct = List.length counts in
  if n = 0 || distinct < 2 || distinct > params.max_cardinality then false
  else begin
    let heavy_threshold =
      max params.min_rows_per_value
        (int_of_float (Float.ceil (params.heavy_value_share *. float_of_int n)))
    in
    let heavy = List.length (List.filter (fun (_, c) -> c >= heavy_threshold) counts) in
    heavy >= params.min_heavy_values
    && float_of_int heavy /. float_of_int distinct > params.heavy_fraction
  end

let categorical_attributes ?(params = default_params) table =
  Table.schema table |> Schema.attribute_names
  |> List.filter (is_categorical ~params table)
