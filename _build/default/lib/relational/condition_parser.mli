(** Parser for the SQL-ish condition syntax printed by
    {!Condition.to_string} — used by the CLI (--where) and handy in
    tests.

    Grammar (case-insensitive keywords):

    {v
      cond   ::= or
      or     ::= and (OR and)*
      and    ::= unary (AND unary)*
      unary  ::= NOT unary | '(' cond ')' | atom | TRUE
      atom   ::= ident '=' value | ident IN '(' value (',' value)* ')'
      value  ::= int | float | true | false | 'single-quoted string'
               | bare-word (read as a string)
      ident  ::= bare-word | "double-quoted"
    v} *)

exception Parse_error of string

val parse : string -> Condition.t
(** Raises {!Parse_error} with a human-readable message on bad input. *)

val parse_opt : string -> Condition.t option
