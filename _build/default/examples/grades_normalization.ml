(* Attribute normalization end-to-end (paper §4 + §5.7).

   grades_narrow(name, examNum, grade) must be mapped onto
   grades_wide(name, grade1..grade5): rows become columns.  The pipeline:

   1. ContextMatch with ClioQualTable discovers one view per examNum
      value and aligns each view's grade with the right target column
      (numeric distributions: exam i has mean 40 + 10(i-1)).
   2. Constraint mining finds the base key (name, examNum); the §4.2
      rules propagate view keys and contextual foreign keys.
   3. Join rule 1 groups the views on name; the mapping executor runs
      the 5-way full outer join and emits the wide table.

   Run with: dune exec examples/grades_normalization.exe *)

let () =
  let params = Workload.Grades.default_params in
  let source = Workload.Grades.narrow params in
  let target = Workload.Grades.wide params in

  Printf.printf "Source: %d students x %d exams, sigma = %.1f\n\n"
    params.Workload.Grades.students params.Workload.Grades.exams params.Workload.Grades.sigma;

  let config =
    {
      Ctxmatch.Config.default with
      early_disjuncts = false;
      select = Ctxmatch.Config.Clio_qual_table;
    }
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let result = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in

  print_endline "Selected contextual matches:";
  List.iter
    (fun m -> Printf.printf "  %s\n" (Matching.Schema_match.to_string m))
    result.Ctxmatch.Context_match.matches;

  let truth = Evalharness.Ground_truth.grades params in
  Printf.printf "\nMatch accuracy: %.3f\n"
    (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches);

  (* Build and display the mapping plan. *)
  let plan =
    Mapping.Mapping_gen.plan ~source ~target
      ~matches:result.Ctxmatch.Context_match.matches ()
  in
  Printf.printf "\nDerived constraints (%d):\n" (List.length plan.Mapping.Mapping_gen.derived);
  List.iter
    (fun (d : Mapping.Propagation.derived) ->
      Printf.printf "  [%-22s] %s\n" d.rule (Mapping.Constraints.to_string d.constr))
    (List.filteri (fun i _ -> i < 8) plan.Mapping.Mapping_gen.derived);
  Printf.printf "  ... and %d more\n"
    (max 0 (List.length plan.Mapping.Mapping_gen.derived - 8));

  Printf.printf "\nAssociation joins (%d):\n" (List.length plan.Mapping.Mapping_gen.joins);
  List.iter
    (fun (j : Mapping.Association.join) ->
      Printf.printf "  [%-5s] %s  <->  %s on %s\n" j.rule j.left j.right
        (String.concat ", " (List.map (fun (a, b) -> a ^ " = " ^ b) j.on)))
    (List.filteri (fun i _ -> i < 6) plan.Mapping.Mapping_gen.joins);

  (* Execute the mapping and verify its output. *)
  let mapped = Mapping.Mapping_gen.execute_all plan in
  let wide = Relational.Database.table mapped Workload.Grades.wide_table_name in
  Printf.printf "\nExecuted mapping: %d wide rows (expected %d)\n"
    (Relational.Table.row_count wide) params.Workload.Grades.students;

  let nulls =
    Array.fold_left
      (fun acc row ->
        acc
        + Array.fold_left
            (fun a v -> if Relational.Value.is_null v then a + 1 else a)
            0 row)
      0
      (Relational.Table.rows wide)
  in
  Printf.printf "Null cells in output: %d\n" nulls;
  print_endline "\nFirst three output rows:";
  Array.iteri
    (fun i row ->
      if i < 3 then begin
        let cells =
          Array.to_list row |> List.map Relational.Value.to_string |> String.concat " | "
        in
        Printf.printf "  %s\n" cells
      end)
    (Relational.Table.rows wide)
