examples/quickstart.mli:
