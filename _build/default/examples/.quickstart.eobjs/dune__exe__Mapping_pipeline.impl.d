examples/mapping_pipeline.ml: Association Attribute Condition Constraints Executor List Mapping Printf Propagation Relation Relational Schema Sp_query Stats Table Value
