examples/retail_scenario.mli:
