examples/grades_normalization.mli:
