examples/quickstart.ml: Ctxmatch Evalharness Format List Matching Printf Relational Workload
