examples/target_side.ml: Ctxmatch List Printf Relational String Workload
