examples/target_side.mli:
