examples/conjunctive_and_pricing.mli:
