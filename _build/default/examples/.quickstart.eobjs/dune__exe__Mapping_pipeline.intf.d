examples/mapping_pipeline.mli:
