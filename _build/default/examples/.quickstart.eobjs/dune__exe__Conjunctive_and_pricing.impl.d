examples/conjunctive_and_pricing.ml: Ctxmatch List Mapping Matching Printf Workload
