examples/grades_normalization.ml: Array Ctxmatch Evalharness List Mapping Matching Printf Relational String Workload
