examples/retail_scenario.ml: Ctxmatch Evalharness List Printf Workload
