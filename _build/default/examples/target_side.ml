(* Target-side contextual matching (paper §3 / §7).

   Here the *target* is the combined inventory file and the source has
   separate Book/Music tables — the mirror image of the quickstart.  The
   conditions must land on the target table: Book rows feed Inventory
   only where ItemType selects the book labels.

   Run with: dune exec examples/target_side.exe *)

let () =
  let params = { Workload.Retail.default_params with rows = 500; target_rows = 350 } in
  (* roles swapped on purpose *)
  let source = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let target = Workload.Retail.source params in

  Printf.printf "Source (separated): %s\n"
    (String.concat ", " (Relational.Database.table_names source));
  Printf.printf "Target (combined):  %s\n\n"
    (String.concat ", " (Relational.Database.table_names target));

  let matches, raw =
    Ctxmatch.Target_context.run ~config:Ctxmatch.Config.default ~algorithm:`Src_class ~source
      ~target ()
  in
  Printf.printf "Candidate views on the target side: %d\n\n"
    raw.Ctxmatch.Context_match.candidate_view_count;

  print_endline "Matches (conditions annotate the target table):";
  List.iter (fun m -> Printf.printf "  %s\n" (Ctxmatch.Target_context.to_string m)) matches;

  let contextual =
    List.filter
      (fun (m : Ctxmatch.Target_context.t) -> m.condition <> Relational.Condition.True)
      matches
  in
  Printf.printf "\n%d of %d matches are contextual; all conditions are on %s\n"
    (List.length contextual) (List.length matches)
    (match contextual with
    | m :: _ -> m.Ctxmatch.Target_context.tgt_base
    | [] -> "(none)")
