(* Quickstart: the running example of the paper (Example 1.1).

   A combined retail inventory table (books + CDs, discriminated by an
   ItemType column) is matched against a target schema that stores books
   and music in separate tables.  A standard matcher produces ambiguous
   matches; contextual matching annotates them with the conditions
   (ItemType IN {...}) that make them meaningful.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Generate a small retail scenario (see Workload.Retail for the
     schema; data is synthesized deterministically from the seed). *)
  let params = { Workload.Retail.default_params with rows = 500; target_rows = 250 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in

  print_endline "Source schema:";
  Format.printf "  %a@." Relational.Database.pp source;
  print_endline "Target schema:";
  Format.printf "  %a@." Relational.Database.pp target;

  (* 2. A plain standard match: note the ambiguity — Title matches both
     Book.BookTitle and Music.AlbumTitle, unconditionally. *)
  let model = Matching.Standard_match.build ~source ~target () in
  let standard = Matching.Standard_match.matches model ~tau:0.5 in
  Printf.printf "\nStandard matches (tau = 0.5): %d\n" (List.length standard);
  List.iter
    (fun m -> Printf.printf "  %s\n" (Matching.Schema_match.to_string m))
    (List.filteri (fun i _ -> i < 8) standard);

  (* 3. Contextual matching: ContextMatch with SrcClassInfer and
     EarlyDisjuncts (the paper's highest-accuracy configuration uses
     TgtClassInfer; SrcClassInfer is the faster one). *)
  let config = Ctxmatch.Config.default in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let result = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in

  Printf.printf "\nCandidate view families: %d (scored views: %d)\n"
    (List.length result.Ctxmatch.Context_match.families)
    result.Ctxmatch.Context_match.candidate_view_count;
  List.iter
    (fun f ->
      Printf.printf "  family on %s (classifier F1 = %.2f): %d views\n" f.Relational.View.attribute
        f.Relational.View.quality
        (List.length f.Relational.View.views))
    result.Ctxmatch.Context_match.families;

  Printf.printf "\nSelected matches:\n";
  List.iter
    (fun m -> Printf.printf "  %s\n" (Matching.Schema_match.to_string m))
    result.Ctxmatch.Context_match.matches;

  (* 4. Score against the known ground truth. *)
  let truth = Evalharness.Ground_truth.retail params Workload.Retail.Ryan_eyers in
  Printf.printf "\nAccuracy  %.3f\nPrecision %.3f\nFMeasure  %.3f\n"
    (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches)
    (Evalharness.Ground_truth.precision truth result.Ctxmatch.Context_match.matches)
    (Evalharness.Ground_truth.fmeasure truth result.Ctxmatch.Context_match.matches)
