(* Retail study: compare the three InferCandidateViews algorithms
   (NaiveInfer / SrcClassInfer / TgtClassInfer) and the two disjunct
   policies on the horizontal-partitioning scenario of §5, including the
   "chameleon" correlated attributes of §5.3.

   Run with: dune exec examples/retail_scenario.exe *)

let run ~name ~config ~algorithm ~source ~target ~truth =
  let infer = Ctxmatch.Context_match.infer_of algorithm ~target in
  let result = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
  Printf.printf "  %-24s F=%.3f  acc=%.3f  prec=%.3f  views=%-4d  %.2fs\n" name
    (Evalharness.Ground_truth.fmeasure truth result.Ctxmatch.Context_match.matches)
    (Evalharness.Ground_truth.accuracy truth result.Ctxmatch.Context_match.matches)
    (Evalharness.Ground_truth.precision truth result.Ctxmatch.Context_match.matches)
    result.Ctxmatch.Context_match.candidate_view_count
    result.Ctxmatch.Context_match.elapsed_seconds

let () =
  let params = Workload.Retail.default_params in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let truth = Evalharness.Ground_truth.retail params Workload.Retail.Ryan_eyers in

  Printf.printf "Retail, gamma = %d, %d source rows, target Ryan_Eyers\n\n"
    params.Workload.Retail.gamma params.Workload.Retail.rows;

  Printf.printf "EarlyDisjuncts (omega = %.2f):\n" Ctxmatch.Config.default.Ctxmatch.Config.omega;
  List.iter
    (fun (name, algorithm) ->
      run ~name ~config:Ctxmatch.Config.default ~algorithm ~source ~target ~truth)
    [ ("NaiveInfer", `Naive); ("SrcClassInfer", `Src_class); ("TgtClassInfer", `Tgt_class) ];

  let late = Ctxmatch.Config.late (Ctxmatch.Config.with_omega Ctxmatch.Config.default 0.1) in
  Printf.printf "\nLateDisjuncts (omega = 0.10):\n";
  List.iter
    (fun (name, algorithm) -> run ~name ~config:late ~algorithm ~source ~target ~truth)
    [ ("NaiveInfer", `Naive); ("SrcClassInfer", `Src_class); ("TgtClassInfer", `Tgt_class) ];

  (* §5.3: chameleon attributes sharing ItemType's domain.  At high
     correlation they are nearly indistinguishable from the true
     context attribute, and any match using them counts as an error. *)
  Printf.printf "\nWith 3 correlated attributes (SrcClassInfer, EarlyDisjuncts):\n";
  List.iter
    (fun rho ->
      let augmented =
        Workload.Augment.add_correlated ~seed:77 ~count:3 ~rho
          ~table:Workload.Retail.source_table_name ~reference:Workload.Retail.item_type_attr
          source
      in
      let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
      let result =
        Ctxmatch.Context_match.run ~config:Ctxmatch.Config.default ~infer ~source:augmented
          ~target ()
      in
      Printf.printf "  rho = %.2f: F=%.3f (scored views: %d)\n" rho
        (Evalharness.Ground_truth.fmeasure truth result.Ctxmatch.Context_match.matches)
        result.Ctxmatch.Context_match.candidate_view_count)
    [ 0.0; 0.5; 0.9; 0.99 ]
