(* Two scenarios beyond the paper's evaluation section:

   1. Conjunctive contexts (§3.5): the target separates *fiction* books,
      *reference* books and music; the reference table needs the
      2-condition (ItemType = Book AND Fiction = 0), found by the
      iterated ContextMatch.

   2. Example 1.2 (price codes): PriceList(itemno, prcode, price) maps
      onto Catalog(itemno, price, sale); the price -> sale edge is the
      paper's canonical false-negative, recovered by running at a low
      tau, and the two views join on itemno (attribute normalization).
      The equivalent SQL script is printed at the end.

   Run with: dune exec examples/conjunctive_and_pricing.exe *)

let () =
  (* ---- 1. conjunctive contexts ---- *)
  let np = Workload.Nested_retail.default_params in
  let source = Workload.Nested_retail.source np in
  let target = Workload.Nested_retail.target np in
  print_endline "== Conjunctive contexts (fiction / reference / music) ==";
  let stages, final =
    Ctxmatch.Conjunctive.run ~config:Ctxmatch.Config.default ~stages:2 ~algorithm:`Src_class
      ~source ~target ()
  in
  List.iter
    (fun (s : Ctxmatch.Conjunctive.stage) ->
      Printf.printf "stage %d: %d candidate view families\n" s.stage_index
        (List.length s.result.Ctxmatch.Context_match.families))
    stages;
  print_endline "final contextual matches:";
  List.iter
    (fun m -> Printf.printf "  %s\n" (Matching.Schema_match.to_string m))
    (List.filter Matching.Schema_match.is_contextual final);
  Printf.printf "conjunctive accuracy: %.2f\n\n" (Workload.Nested_retail.accuracy final);

  (* ---- 2. Example 1.2 ---- *)
  let pp = Workload.Pricing.default_params in
  let psource = Workload.Pricing.source pp in
  let ptarget = Workload.Pricing.target pp in
  print_endline "== Example 1.2: price codes (reg/sale) ==";
  let config =
    {
      Ctxmatch.Config.default with
      tau = 0.15 (* the sale edge is the paper's canonical false negative *);
      omega = 0.05;
      early_disjuncts = false;
      select = Ctxmatch.Config.Clio_qual_table;
    }
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target:ptarget in
  let r = Ctxmatch.Context_match.run ~config ~infer ~source:psource ~target:ptarget () in
  List.iter
    (fun m -> Printf.printf "  %s\n" (Matching.Schema_match.to_string m))
    r.Ctxmatch.Context_match.matches;
  Printf.printf "pricing accuracy: %.2f\n\n" (Workload.Pricing.accuracy r.Ctxmatch.Context_match.matches);

  let plan =
    Mapping.Mapping_gen.plan ~source:psource ~target:ptarget
      ~matches:r.Ctxmatch.Context_match.matches ()
  in
  print_endline "equivalent SQL transformation:";
  print_string (Mapping.Sql_render.script plan)
