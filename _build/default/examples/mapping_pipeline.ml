(* Constraint propagation and semantic association on the
   student/project schema of the paper's Examples 4.1 - 4.5, built by
   hand (no matcher involved) to show the §4 machinery in isolation.

   Run with: dune exec examples/mapping_pipeline.exe *)

open Relational
open Mapping

let project_table =
  let schema =
    Schema.make "project"
      [
        Attribute.string "name";
        Attribute.int "assign";
        Attribute.string "grade";
        Attribute.string "instructor";
      ]
  in
  let grades = [| "A"; "B"; "C"; "A-"; "B+" |] in
  let rng = Stats.Rng.create 12 in
  let rows =
    List.concat_map
      (fun name ->
        List.init 10 (fun a ->
            [|
              Value.String name;
              Value.Int a;
              Value.String (Stats.Rng.pick rng grades);
              Value.String (Printf.sprintf "prof%d" (a mod 3));
            |]))
      [ "ann"; "bob"; "carol"; "dave"; "erin" ]
  in
  Table.make schema rows

let student_table =
  let schema =
    Schema.make "student"
      [ Attribute.string "name"; Attribute.string "email"; Attribute.string "address" ]
  in
  Table.make schema
    (List.map
       (fun n ->
         [| Value.String n; Value.String (n ^ "@uni.edu"); Value.String (n ^ " street") |])
       [ "ann"; "bob"; "carol"; "dave"; "erin" ])

let () =
  (* Example 4.1: views V_i = select name, grade from project where assign = i *)
  let views =
    List.init 10 (fun i ->
        Relation.of_query
          ~name:(Printf.sprintf "V%d" i)
          (Sp_query.select_some [ "name"; "grade" ] "project"
             (Condition.Eq ("assign", Value.Int i)))
          project_table)
  in
  let relations = Relation.base project_table :: Relation.base student_table :: views in

  (* Declared base constraints (keys underlined in Example 4.1). *)
  let base =
    [
      Constraints.key "project" [ "name"; "assign" ];
      Constraints.key "student" [ "name" ];
      Constraints.fk "project" [ "name" ] "student" [ "name" ];
    ]
  in
  print_endline "Declared base constraints:";
  List.iter (fun c -> Printf.printf "  %s\n" (Constraints.to_string c)) base;

  (* Example 4.2: constraint propagation. *)
  let derived = Propagation.derive ~relations ~base in
  Printf.printf "\nPropagated constraints (%d), V0 and V1 only:\n" (List.length derived);
  List.iter
    (fun (d : Propagation.derived) ->
      let rel = Constraints.rel_of d.constr in
      if rel = "V0" || rel = "V1" then
        Printf.printf "  [%-22s] %s\n" d.rule (Constraints.to_string d.constr))
    derived;

  (* Examples 4.3/4.4: join rule 1 groups the ten views on name. *)
  let joins = Association.joins ~relations ~constraints:base ~derived in
  let join1 = List.filter (fun (j : Association.join) -> j.rule = "join1") joins in
  Printf.printf "\njoin1 associations: %d (all pairs of the 10 views)\n" (List.length join1);

  (* Assemble the logical table by chaining the joins from V0. *)
  let view_names = List.map Relation.name views in
  let component_joins =
    List.filter
      (fun (j : Association.join) ->
        j.rule = "join1" && List.mem j.left view_names && List.mem j.right view_names)
      joins
  in
  let joined, used = Executor.join_component relations component_joins ~start:"V0" in
  Printf.printf "\nLogical table joins %d views; %d rows (one per student), %d columns\n"
    (List.length used) (Table.row_count joined) (Table.arity joined);

  (* Example 4.5 caveat: join2 must NOT associate V_i with U_j for
     i <> j.  Demonstrate with instructor views. *)
  let u1 =
    Relation.of_query ~name:"U1"
      (Sp_query.select_some [ "name"; "instructor" ] "project"
         (Condition.Eq ("assign", Value.Int 1)))
      project_table
  in
  let u2 =
    Relation.of_query ~name:"U2"
      (Sp_query.select_some [ "name"; "instructor" ] "project"
         (Condition.Eq ("assign", Value.Int 2)))
      project_table
  in
  let rels2 = [ Relation.base project_table; List.nth views 1; u1; u2 ] in
  let derived2 = Propagation.derive ~relations:rels2 ~base in
  let joins2 = Association.joins ~relations:rels2 ~constraints:base ~derived:derived2 in
  let join2_pairs =
    List.filter_map
      (fun (j : Association.join) -> if j.rule = "join2" then Some (j.left, j.right) else None)
      joins2
  in
  print_endline "\njoin2 associations (same selection condition only):";
  List.iter (fun (l, r) -> Printf.printf "  %s <-> %s\n" l r) join2_pairs;
  print_endline "  (V1 <-> U1 is joined; V1 <-> U2 correctly is not)"
