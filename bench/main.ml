(* Reproduction harness for every figure of the paper's evaluation
   (§5, Figures 8-22), plus Bechamel micro-benchmarks of the hot paths.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig12 fig15  -- selected figures
     dune exec bench/main.exe -- micro        -- only the micro-benchmarks

   Absolute runtimes differ from the paper's 2004-era Java testbed; the
   claims reproduced are the *shapes*: who wins, where plateaus and
   crossovers sit, what grows linearly vs exponentially.  Expected vs
   measured is recorded in EXPERIMENTS.md. *)

module R = Evalharness.Reporting
module E = Evalharness.Experiment

let reps = 2
let base_seed = 42

(* Reduced sample sizes keep the full harness under a few minutes while
   preserving every qualitative result. *)
let retail_params = { Workload.Retail.default_params with rows = 400; target_rows = 200 }
let grades_params = { Workload.Grades.default_params with students = 120 }

(* Quarantined work units across every measured run (see DESIGN.md,
   "Failure semantics").  The harness runs with faults disarmed and no
   deadline, so the final "degraded:" line doubles as a canary: any
   non-zero count means the pipeline silently lost work. *)
let degraded_issues = ref 0

let count_issues (result : Ctxmatch.Context_match.result) =
  degraded_issues := !degraded_issues + List.length result.Ctxmatch.Context_match.issues;
  result

let retail_measure ?(params = retail_params) ?(style = Workload.Retail.Ryan_eyers)
    ?(config = Ctxmatch.Config.default) ?(augment = fun db -> db)
    ?(target_augment = fun db -> db) algorithm ~seed =
  let params = { params with Workload.Retail.seed } in
  let source = augment (Workload.Retail.source params) in
  let target = target_augment (Workload.Retail.target params style) in
  let truth = Evalharness.Ground_truth.retail params style in
  let infer = Ctxmatch.Context_match.infer_of algorithm ~target in
  let config = Ctxmatch.Config.with_seed config seed in
  let result = count_issues (Ctxmatch.Context_match.run ~config ~infer ~source ~target ()) in
  E.measure ~truth result

(* Grades matches are "tenuous" (S5.8): the paper runs at tau = 0.5 on
   its confidence scale; our scale's plateau sits slightly lower (see
   Figure 21), so the grades experiments run at tau = 0.45. *)
let grades_config =
  {
    Ctxmatch.Config.default with
    tau = 0.4;
    omega = 0.05;
    early_disjuncts = false;
    select = Ctxmatch.Config.Clio_qual_table;
  }

let grades_measure ?(params = grades_params) ?(config = grades_config) algorithm ~seed =
  let params = { params with Workload.Grades.seed } in
  let source = Workload.Grades.narrow params in
  let target = Workload.Grades.wide params in
  let truth = Evalharness.Ground_truth.grades params in
  let infer = Ctxmatch.Context_match.infer_of algorithm ~target in
  let config = Ctxmatch.Config.with_seed config seed in
  let result = count_issues (Ctxmatch.Context_match.run ~config ~infer ~source ~target ()) in
  E.measure ~truth result

let omega_sweep = [ 0.0; 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5 ]

(* --- Figures 8-10: FMeasure vs omega, Early vs Late, three targets --- *)

let fig_omega figure style =
  R.section
    (Printf.sprintf "%s: FMeasure vs omega (Early vs Late), target %s" figure
       (Workload.Retail.style_name style));
  R.note "expected shape: both plateau near their best F; Early's plateau is wider (S5.1)";
  let rows =
    List.map
      (fun omega ->
        let measure early =
          let config =
            { Ctxmatch.Config.default with omega; early_disjuncts = early }
          in
          (E.repeat ~reps ~base_seed (retail_measure ~style ~config `Src_class)).E.fmeasure
        in
        (omega, [ measure true; measure false ]))
      omega_sweep
  in
  R.series ~x_label:"omega" ~columns:[ "early-F"; "late-F" ] ~rows

let fig8 () = fig_omega "Figure 8" Workload.Retail.Ryan_eyers
let fig9 () = fig_omega "Figure 9" Workload.Retail.Aaron_day
let fig10 () = fig_omega "Figure 10" Workload.Retail.Barrett_arney

(* --- Figure 11: MultiTable vs QualTable (NaiveInfer) ------------------ *)

let fig11 () =
  R.section "Figure 11: MultiTable vs QualTable, NaiveInfer, vs omega";
  R.note "expected shape: QualTable >= MultiTable; MultiTable flat (ignores omega)";
  (* chameleon attributes make MultiTable's incoherence visible, as in
     the paper's full study *)
  let augment db =
    Workload.Augment.add_correlated ~seed:7 ~count:2 ~rho:0.8
      ~table:Workload.Retail.source_table_name ~reference:Workload.Retail.item_type_attr db
  in
  let rows =
    List.map
      (fun omega ->
        let measure select =
          let config = { Ctxmatch.Config.default with omega; select } in
          (E.repeat ~reps ~base_seed (retail_measure ~augment ~config `Naive)).E.fmeasure
        in
        (omega, [ measure Ctxmatch.Config.Qual_table; measure Ctxmatch.Config.Multi_table ]))
      omega_sweep
  in
  R.series ~x_label:"omega" ~columns:[ "QualTable-F"; "MultiTable-F" ] ~rows

(* --- Figures 12-13: correlated (chameleon) attributes ----------------- *)

let fig_correlated figure ~early =
  R.section
    (Printf.sprintf "%s: FMeasure vs correlation rho, %s" figure
       (if early then "EarlyDisjuncts" else "LateDisjuncts"));
  R.note
    (if early then
       "expected shape: robust until rho is very high; Src/Tgt >= Naive (S5.3)"
     else "expected shape: degrades earlier than EarlyDisjuncts (S5.3)");
  let config =
    if early then Ctxmatch.Config.default
    else Ctxmatch.Config.late (Ctxmatch.Config.with_omega Ctxmatch.Config.default 0.1)
  in
  let rows =
    List.map
      (fun rho ->
        let augment db =
          Workload.Augment.add_correlated ~seed:7 ~count:3 ~rho
            ~table:Workload.Retail.source_table_name
            ~reference:Workload.Retail.item_type_attr db
        in
        let measure algorithm =
          (E.repeat ~reps ~base_seed (retail_measure ~augment ~config algorithm)).E.fmeasure
        in
        (rho, [ measure `Naive; measure `Src_class; measure `Tgt_class ]))
      [ 0.0; 0.3; 0.6; 0.8; 0.95; 0.99; 1.0 ]
  in
  R.series ~x_label:"rho" ~columns:[ "naive-F"; "src-F"; "tgt-F" ] ~rows

let fig12 () = fig_correlated "Figure 12" ~early:true
let fig13 () = fig_correlated "Figure 13" ~early:false

(* --- Figure 14: FMeasure vs gamma, LateDisjuncts ----------------------- *)

let fig14 () =
  R.section "Figure 14: FMeasure vs gamma (LateDisjuncts), target Ryan_Eyers";
  R.note "expected shape: Late degrades as gamma grows (views shrink with gamma) (S5.4)";
  let config = Ctxmatch.Config.late (Ctxmatch.Config.with_omega Ctxmatch.Config.default 0.1) in
  let rows =
    List.map
      (fun gamma ->
        (* fixed sample: each of the gamma views covers ~rows/gamma
           tuples, so larger gamma means weaker per-view improvements *)
        let params = { retail_params with Workload.Retail.gamma; rows = 600 } in
        let measure algorithm =
          (E.repeat ~reps ~base_seed (retail_measure ~params ~config algorithm)).E.fmeasure
        in
        (float_of_int gamma, [ measure `Naive; measure `Src_class; measure `Tgt_class ]))
      [ 2; 4; 6; 8; 10 ]
  in
  R.series ~x_label:"gamma" ~columns:[ "naive-F"; "src-F"; "tgt-F" ] ~rows

(* --- Figure 15: runtime of Early relative to Late vs gamma ------------- *)

let fig15 () =
  R.section "Figure 15: EarlyDisjuncts runtime relative to LateDisjuncts vs gamma (NaiveInfer)";
  R.note "expected shape: ratio grows super-linearly (set-partition explosion, S5.4)";
  let rows =
    List.map
      (fun gamma ->
        let params = { retail_params with Workload.Retail.gamma } in
        let time early =
          let config =
            if early then Ctxmatch.Config.default
            else Ctxmatch.Config.late Ctxmatch.Config.default
          in
          (E.repeat ~reps:1 ~base_seed (retail_measure ~params ~config `Naive)).E.seconds
        in
        let early_t = time true and late_t = time false in
        (float_of_int gamma, [ early_t; late_t; early_t /. Float.max 1e-9 late_t ]))
      [ 2; 4; 6; 8 ]
  in
  R.series ~x_label:"gamma" ~columns:[ "early-s"; "late-s"; "ratio" ] ~rows

(* --- Figure 16: FMeasure vs schema size for three gammas --------------- *)

(* §5.5 widens *every* table: noise attributes drawn from one unrelated
   vocabulary are added to source and target alike, so they
   preferentially match each other across the schemas. *)
let widen_by ~seed n db =
  Workload.Augment.widen ~seed ~noise_attrs:n ~categorical_noise:n
    ~categorical_reference:(Some Workload.Retail.item_type_attr) db

(* target tables have no categorical attribute, so they receive only the
   non-categorical noise columns (§5.5) *)
let widen_target ~seed n db =
  Workload.Augment.widen ~seed ~noise_attrs:n ~categorical_noise:0
    ~categorical_reference:None db

(* schema-size study runs on a smaller sample, where random candidate
   views are more likely to look appealing (S5.5) *)
let fig16_params = { retail_params with Workload.Retail.rows = 150; target_rows = 100 }

let fig16 () =
  R.section "Figure 16: FMeasure vs added attributes, gamma in {2, 4, 8} (SrcClassInfer)";
  R.note "expected shape: F degrades as noise attributes are added; higher gamma suffers more (S5.5)";
  let rows =
    List.map
      (fun n ->
        let measure gamma =
          let params = { fig16_params with Workload.Retail.gamma } in
          (E.repeat ~reps:3 ~base_seed
             (retail_measure ~params ~augment:(widen_by ~seed:5 n)
                ~target_augment:(widen_target ~seed:11 n) `Src_class))
            .E.fmeasure
        in
        (float_of_int n, [ measure 2; measure 4; measure 8 ]))
      [ 0; 1; 2; 3; 4; 6 ]
  in
  R.series ~x_label:"extra-attrs" ~columns:[ "gamma2-F"; "gamma4-F"; "gamma8-F" ] ~rows

(* --- Figure 17: runtime vs schema size, Src vs Tgt --------------------- *)

let fig17 () =
  R.section "Figure 17: runtime vs added attributes, SrcClassInfer vs TgtClassInfer";
  R.note "expected shape: Tgt slower than Src, gap grows with schema size (S5.5)";
  let rows =
    List.map
      (fun n ->
        let time algorithm =
          (E.repeat ~reps:1 ~base_seed
             (retail_measure ~augment:(widen_by ~seed:5 n)
                ~target_augment:(widen_target ~seed:11 n) algorithm))
            .E.seconds
        in
        (float_of_int n, [ time `Src_class; time `Tgt_class ]))
      [ 0; 6; 12; 18 ]
  in
  R.series ~x_label:"extra-attrs" ~columns:[ "src-s"; "tgt-s" ] ~rows

(* --- Figure 18: accuracy vs sample size -------------------------------- *)

let fig18 () =
  R.section "Figure 18: accuracy vs source sample size (TgtClassInfer)";
  R.note "expected shape: accuracy grows with sample size (S5.6)";
  let rows =
    List.map
      (fun rows_n ->
        let params = { retail_params with Workload.Retail.rows = rows_n } in
        let m = E.repeat ~reps ~base_seed (retail_measure ~params `Tgt_class) in
        (float_of_int rows_n, [ m.E.accuracy; m.E.fmeasure ]))
      [ 50; 100; 200; 400; 800 ]
  in
  R.series ~x_label:"rows" ~columns:[ "accuracy"; "F" ] ~rows

(* --- Figure 19: grades accuracy vs sigma (ClioQualTable) --------------- *)

let fig19 () =
  R.section "Figure 19: Grades accuracy vs sigma, ClioQualTable";
  R.note "expected shape: high accuracy at low sigma, decaying as exam distributions overlap;";
  R.note "Src/Tgt beat Naive over a wide range, Naive wins at very high sigma (S5.7)";
  let rows =
    List.map
      (fun sigma ->
        let params = { grades_params with Workload.Grades.sigma } in
        let measure algorithm =
          (E.repeat ~reps:4 ~base_seed (grades_measure ~params algorithm)).E.accuracy
        in
        (sigma, [ measure `Naive; measure `Src_class; measure `Tgt_class ]))
      [ 2.0; 5.0; 8.0; 12.0; 16.0; 20.0; 24.0; 28.0; 32.0; 40.0; 50.0 ]
  in
  R.series ~x_label:"sigma" ~columns:[ "naive-acc"; "src-acc"; "tgt-acc" ] ~rows

(* --- Figures 20-22: varying the match pruning threshold tau ------------ *)

let tau_sweep = [ 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 ]

let fig20 () =
  R.section "Figure 20: Inventory FMeasure vs tau (SrcClassInfer, EarlyDisjuncts)";
  R.note "expected shape: flat until high tau prunes true matches (S5.8)";
  let rows =
    List.map
      (fun tau ->
        let config = Ctxmatch.Config.with_tau Ctxmatch.Config.default tau in
        let m = E.repeat ~reps ~base_seed (retail_measure ~config `Src_class) in
        (tau, [ m.E.fmeasure; m.E.accuracy ]))
      tau_sweep
  in
  R.series ~x_label:"tau" ~columns:[ "F"; "accuracy" ] ~rows

let fig21 () =
  R.section "Figure 21: Grades accuracy vs tau (ClioQualTable)";
  R.note "expected shape: flat at low tau, collapsing once tau prunes the tenuous";
  R.note "grade->grade_i matches (paper: above 0.65; our confidence scale crosses lower)";
  let rows =
    List.map
      (fun tau ->
        let config = Ctxmatch.Config.with_tau grades_config tau in
        let m = E.repeat ~reps ~base_seed (grades_measure ~config `Src_class) in
        (tau, [ m.E.accuracy ]))
      [ 0.3; 0.4; 0.45; 0.5; 0.55; 0.6; 0.7 ]
  in
  R.series ~x_label:"tau" ~columns:[ "accuracy" ] ~rows

let fig22 () =
  R.section "Figure 22: runtime vs tau (Retail, SrcClassInfer)";
  R.note "expected shape: runtime decreases mildly as tau prunes matches (S5.8)";
  let rows =
    List.map
      (fun tau ->
        let config = Ctxmatch.Config.with_tau Ctxmatch.Config.default tau in
        let m = E.repeat ~reps ~base_seed (retail_measure ~config `Src_class) in
        (tau, [ m.E.seconds ]))
      tau_sweep
  in
  R.series ~x_label:"tau" ~columns:[ "seconds" ] ~rows

(* --- Ablations of the design decisions called out in DESIGN.md --------- *)

(* Ablation A: score-gated confidence (phi(z) * sqrt raw) vs the plain
   z-score confidence.  Without the gate, "best of a uniformly terrible
   field" pairs flood StandardMatch at tau = 0.5 and both precision and
   view selection suffer. *)
let ablation_gating () =
  R.section "Ablation A: gated vs plain z-score confidence (Retail, SrcClassInfer)";
  let rows =
    List.map
      (fun gated ->
        let config = { Ctxmatch.Config.default with gated_confidence = gated } in
        let m = E.repeat ~reps ~base_seed (retail_measure ~config `Src_class) in
        ((if gated then 1.0 else 0.0), [ m.E.fmeasure; m.E.precision; m.E.accuracy ]))
      [ true; false ]
  in
  R.note "x = 1 means gated (the default); x = 0 the plain z-score confidence";
  R.series ~x_label:"gated" ~columns:[ "F"; "precision"; "accuracy" ] ~rows

(* Ablation B: the numeric range matcher.  Its contribution is a small
   (~0.02) confidence boost to mixture-vs-slice numeric pairs, which
   shifts the tau frontier of the tenuous extreme-exam matches: sweep
   tau at sigma = 2 to expose the shifted cliff. *)
let ablation_range () =
  R.section "Ablation B: numeric range matcher on/off (Grades, sigma 2, accuracy vs tau)";
  R.note "expected: the without-range cliff sits ~0.02 of tau earlier";
  let without_range =
    List.filter
      (fun (m : Matching.Matcher.t) -> m.Matching.Matcher.name <> "range")
      Matching.Matchers.default_suite
  in
  let params = { grades_params with Workload.Grades.sigma = 2.0 } in
  let rows =
    List.map
      (fun tau ->
        let measure matchers =
          let config = { grades_config with Ctxmatch.Config.matchers; tau } in
          (E.repeat ~reps ~base_seed (grades_measure ~params ~config `Src_class)).E.accuracy
        in
        (tau, [ measure Matching.Matchers.default_suite; measure without_range ]))
      [ 0.4; 0.42; 0.43; 0.44; 0.46 ]
  in
  R.series ~x_label:"tau" ~columns:[ "with-range"; "without-range" ] ~rows

(* Ablation C: the join rules of ClioQualTable.  Plain QualTable judges
   each exam view against the whole base table and never selects one —
   attribute normalization requires the join-rule-1 group candidate. *)
let ablation_clio () =
  R.section "Ablation C: ClioQualTable vs plain QualTable (Grades accuracy)";
  let rows =
    List.map
      (fun (label, select) ->
        let config = { grades_config with Ctxmatch.Config.select } in
        let m = E.repeat ~reps ~base_seed (grades_measure ~config `Src_class) in
        (label, [ m.E.accuracy ]))
      [ (1.0, Ctxmatch.Config.Clio_qual_table); (0.0, Ctxmatch.Config.Qual_table) ]
  in
  R.note "x = 1 ClioQualTable (join rules), x = 0 plain QualTable";
  R.series ~x_label:"clio" ~columns:[ "accuracy" ] ~rows

(* --- Extension scenarios (beyond the paper's evaluation section) ------- *)

let extensions () =
  R.section "Extensions: cluster-infer, pricing (Ex. 1.2), nested conjunctive, real estate";
  (* ClusterInfer, the paper's omitted third technique, vs SrcClassInfer *)
  let cluster = E.repeat ~reps ~base_seed (retail_measure `Cluster) in
  let src = E.repeat ~reps ~base_seed (retail_measure `Src_class) in
  R.note
    (Printf.sprintf "retail F: cluster-infer %.3f vs src-class %.3f (paper: 'similar')"
       cluster.E.fmeasure src.E.fmeasure);
  (* Example 1.2 pricing *)
  let pricing ~seed =
    let pp = { Workload.Pricing.default_params with seed } in
    let source = Workload.Pricing.source pp in
    let target = Workload.Pricing.target pp in
    let config =
      { grades_config with Ctxmatch.Config.tau = 0.15; omega = 0.05 }
    in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let r = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
    Workload.Pricing.accuracy r.Ctxmatch.Context_match.matches
  in
  R.note
    (Printf.sprintf "pricing (Example 1.2) accuracy at tau=0.15: %.2f"
       ((pricing ~seed:42 +. pricing ~seed:43) /. 2.0));
  (* nested conjunctive *)
  let nested ~seed =
    let np = { Workload.Nested_retail.default_params with seed } in
    let source = Workload.Nested_retail.source np in
    let target = Workload.Nested_retail.target np in
    let _, final =
      Ctxmatch.Conjunctive.run
        ~config:(Ctxmatch.Config.with_seed Ctxmatch.Config.default seed)
        ~stages:2 ~algorithm:`Src_class ~source ~target ()
    in
    Workload.Nested_retail.accuracy final
  in
  R.note
    (Printf.sprintf "nested conjunctive (S3.5) accuracy: %.2f"
       ((nested ~seed:42 +. nested ~seed:43) /. 2.0));
  (* real estate *)
  let realestate ~seed =
    let rp = { Workload.Real_estate.default_params with seed } in
    let source = Workload.Real_estate.source rp in
    let target = Workload.Real_estate.target rp in
    let truth = Evalharness.Ground_truth.real_estate () in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let r =
      Ctxmatch.Context_match.run
        ~config:(Ctxmatch.Config.with_seed Ctxmatch.Config.default seed)
        ~infer ~source ~target ()
    in
    Evalharness.Ground_truth.fmeasure truth r.Ctxmatch.Context_match.matches
  in
  R.note
    (Printf.sprintf "real-estate F: %.2f"
       ((realestate ~seed:42 +. realestate ~seed:43) /. 2.0));
  (* target-side matching *)
  let params = retail_params in
  let source = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let target = Workload.Retail.source params in
  let matches, _ =
    Ctxmatch.Target_context.run ~config:Ctxmatch.Config.default ~algorithm:`Src_class ~source
      ~target ()
  in
  let contextual =
    List.filter
      (fun (m : Ctxmatch.Target_context.t) -> m.condition <> Relational.Condition.True)
      matches
  in
  R.note
    (Printf.sprintf "target-side matching: %d/%d matches carry a target condition"
       (List.length contextual) (List.length matches))

(* --- Bechamel micro-benchmarks of the hot paths ------------------------ *)

(* worker domains for the parallel sections; set with --jobs=N *)
let par_jobs = ref 4

(* Sequential vs parallel hot paths and the profile-cache economics of
   the runtime library (DESIGN.md, "Deterministic multicore runtime").
   On a single-core container the speedup honestly reports ~1.0x: the
   deterministic merge guarantees identical results, not extra cores. *)
let micro_parallel () =
  R.section
    (Printf.sprintf
       "Parallel runtime: sequential vs jobs=%d (%d core(s) available)"
       !par_jobs
       (Domain.recommended_domain_count ()));
  let params = retail_params in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let build jobs () = Matching.Standard_match.build ~jobs ~source ~target () in
  let seq_build = time_best (build 1) in
  let par_build = time_best (build !par_jobs) in
  Printf.printf
    "  standard-match-build (%d rows)       seq %7.1f ms   jobs=%d %7.1f ms   speedup %.2fx\n"
    params.Workload.Retail.rows (seq_build *. 1e3) !par_jobs (par_build *. 1e3)
    (seq_build /. Float.max 1e-9 par_build);
  let run jobs () =
    let config = Ctxmatch.Config.with_jobs Ctxmatch.Config.default jobs in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    Ctxmatch.Context_match.run ~config ~infer ~source ~target ()
  in
  let seq_run = time_best (run 1) in
  let par_run = time_best (run !par_jobs) in
  Printf.printf
    "  context-match end-to-end             seq %7.1f ms   jobs=%d %7.1f ms   speedup %.2fx\n"
    (seq_run *. 1e3) !par_jobs (par_run *. 1e3) (seq_run /. Float.max 1e-9 par_run);
  let result = run 1 () in
  let hits = result.Ctxmatch.Context_match.cache_hits in
  let misses = result.Ctxmatch.Context_match.cache_misses in
  Printf.printf "  profile cache (SrcClassInfer run)    %d hits / %d lookups, hit rate %.1f%%\n"
    hits (hits + misses)
    (100.0 *. float_of_int hits /. Float.max 1.0 (float_of_int (hits + misses)));
  (* NaiveInfer enumerates overlapping families, the shape the subset
     cache exists for *)
  let naive =
    let config =
      Ctxmatch.Config.with_jobs { Ctxmatch.Config.default with omega = 0.1 } 1
    in
    let infer = Ctxmatch.Context_match.infer_of `Naive ~target in
    Ctxmatch.Context_match.run ~config ~infer ~source ~target ()
  in
  let nh = naive.Ctxmatch.Context_match.cache_hits in
  let nm = naive.Ctxmatch.Context_match.cache_misses in
  Printf.printf "  profile cache (NaiveInfer run)       %d hits / %d lookups, hit rate %.1f%%\n"
    nh (nh + nm)
    (100.0 *. float_of_int nh /. Float.max 1.0 (float_of_int (nh + nm)))

let micro () =
  micro_parallel ();
  R.section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let rng = Stats.Rng.create 1 in
  let titles =
    Array.init 200 (fun _ -> (Workload.Corpus.book rng).Workload.Corpus.book_title)
  in
  let profile_a = Textsim.Profile.of_strings_array titles in
  let profile_b =
    Textsim.Profile.of_strings_array
      (Array.init 200 (fun _ -> (Workload.Corpus.album rng).Workload.Corpus.album_title))
  in
  let nb = Learn.Naive_bayes.create () in
  Array.iter (fun t -> Learn.Naive_bayes.train nb ~label:"book" (Textsim.Tokenize.trigrams t)) titles;
  let params = { retail_params with Workload.Retail.rows = 200; target_rows = 100 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let model = Matching.Standard_match.build ~source ~target () in
  let inv = Relational.Database.table source Workload.Retail.source_table_name in
  let view =
    Relational.View.make inv
      (Relational.Condition.In
         (Workload.Retail.item_type_attr, Workload.Retail.book_labels ~gamma:4))
  in
  let base_matches = Matching.Standard_match.matches_from model ~src_table:"Inventory" ~tau:0.5 in
  let tests =
    Test.make_grouped ~name:"ctxmatch"
      [
        Test.make ~name:"trigrams" (Staged.stage (fun () -> Textsim.Tokenize.trigrams "the secret history of the forgotten kingdom"));
        Test.make ~name:"profile-cosine" (Staged.stage (fun () -> Textsim.Profile.cosine profile_a profile_b));
        Test.make ~name:"nb-classify" (Staged.stage (fun () ->
            Learn.Naive_bayes.classify nb (Textsim.Tokenize.trigrams "midnight groove sessions")));
        Test.make ~name:"levenshtein" (Staged.stage (fun () ->
            Textsim.Simmetrics.levenshtein "contextual" "conceptual"));
        Test.make ~name:"phi" (Staged.stage (fun () -> Stats.Distribution.phi 1.234));
        Test.make ~name:"standard-match-build" (Staged.stage (fun () ->
            ignore (Matching.Standard_match.build ~source ~target ())));
        Test.make ~name:"view-rescore" (Staged.stage (fun () ->
            ignore (Matching.Standard_match.view_matches model
                      (Relational.View.make inv (Relational.View.condition view))
                      ~base_matches)));
        Test.make ~name:"view-materialize" (Staged.stage (fun () ->
            ignore (Relational.View.materialize
                      (Relational.View.make inv (Relational.View.condition view)))));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, Analyze.OLS.estimates v) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, estimates) ->
      match estimates with
      | Some [ ns ] ->
        if ns > 1e6 then Printf.printf "  %-40s %10.3f ms/run\n" name (ns /. 1e6)
        else if ns > 1e3 then Printf.printf "  %-40s %10.3f us/run\n" name (ns /. 1e3)
        else Printf.printf "  %-40s %10.1f ns/run\n" name ns
      | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
    rows

(* --- Persistent store: cold vs warm (BENCH_store.json) ----------------- *)

(* One cold run populating a fresh store, then a warm run over the same
   inputs.  The JSON records both timings and the warm run's store
   economics; the figure itself is the CI gate — it exits non-zero if
   the warm run hit the store zero times, recomputed any artefact, or
   produced different matches. *)
let store_report () =
  R.section "Persistent store: cold vs warm run over unchanged inputs";
  let dir = Filename.temp_file "ctxstore_bench" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
  @@ fun () ->
  let params = retail_params in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  let config = Ctxmatch.Config.with_seed Ctxmatch.Config.default base_seed in
  let timed store =
    let t0 = Unix.gettimeofday () in
    let r = count_issues (Ctxmatch.Context_match.run ~config ~store ~infer ~source ~target ()) in
    (Unix.gettimeofday () -. t0, r)
  in
  let fp (r : Ctxmatch.Context_match.result) =
    String.concat "\n"
      (List.map
         (fun (m : Matching.Schema_match.t) ->
           Printf.sprintf "%s|%s|%s|%s.%s|%h" m.src_owner m.src_base m.src_attr m.tgt_table
             m.tgt_attr m.confidence)
         r.Ctxmatch.Context_match.matches)
  in
  let cold_store = Store.open_dir dir in
  let cold_s, cold = timed cold_store in
  Store.flush cold_store;
  let warm_store = Store.open_dir dir in
  let warm_s, warm = timed warm_store in
  let cst = Store.stats cold_store in
  let wst = Store.stats warm_store in
  let identical = fp cold = fp warm in
  let warm_builds = warm.Ctxmatch.Context_match.profile_builds in
  let oc = open_out "BENCH_store.json" in
  Printf.fprintf oc
    {|{
  "cold_seconds": %.6f,
  "warm_seconds": %.6f,
  "speedup": %.3f,
  "cold": { "hits": %d, "misses": %d, "added": %d, "profile_builds": %d },
  "warm": { "hits": %d, "misses": %d, "shard_loads": %d, "profile_builds": %d },
  "identical_matches": %b
}
|}
    cold_s warm_s
    (cold_s /. Float.max 1e-9 warm_s)
    cst.Store.st_hits cst.Store.st_misses cst.Store.st_adds
    cold.Ctxmatch.Context_match.profile_builds wst.Store.st_hits wst.Store.st_misses
    wst.Store.st_shard_loads warm_builds identical;
  close_out oc;
  R.note
    (Printf.sprintf
       "wrote BENCH_store.json: cold %.1f ms -> warm %.1f ms; warm run %d store hits, %d builds"
       (cold_s *. 1e3) (warm_s *. 1e3) wst.Store.st_hits warm_builds);
  if wst.Store.st_hits = 0 then begin
    Printf.eprintf "bench: store canary failed: warm run never hit the store\n";
    exit 1
  end;
  if warm_builds <> 0 then begin
    Printf.eprintf "bench: store canary failed: warm run recomputed %d artefacts\n" warm_builds;
    exit 1
  end;
  if not identical then begin
    Printf.eprintf "bench: store canary failed: warm matches differ from cold\n";
    exit 1
  end

(* --- Scoring kernel: interned/partitioned vs legacy (BENCH_kernel.json) - *)

(* Wall time of the view-scoring phase — every candidate view re-scored
   against the base matches — with the kernel on vs off, at growing
   sample sizes.  Candidate views come from NaiveInfer under
   EarlyDisjuncts (paper Fig. 5): it enumerates every set-partition of
   each categorical attribute's values, so many families select row
   subsets of the same attribute — the regime the partitioned profiles
   amortise (the legacy path re-tokenises one column subset per view,
   the kernel path tokenises each partition once and sums counts).
   Each mode starts from a fresh model per repetition (the caches begin
   empty, so the measured pass does the real work; a second pass would
   only measure memo hits) and the minimum over repetitions is kept.
   The matches are fingerprinted with %h: any bit drift between the two
   paths fails the run, making this a perf gate that can never trade
   correctness for speed. *)
let kernel_report () =
  R.section "Scoring kernel: interned + partitioned view scoring vs legacy string path";
  R.note "expected shape: speedup grows with scale (partition reuse amortises per family)";
  let fp_scored scored =
    String.concat "\n"
      (List.concat_map
         (List.map (fun (m : Matching.Schema_match.t) ->
              Printf.sprintf "%s|%s|%s|%s.%s|%s|%h" m.src_owner m.src_base m.src_attr
                m.tgt_table m.tgt_attr
                (Relational.Condition.to_string m.condition)
                m.confidence))
         scored)
  in
  let measure scale =
    let params =
      { retail_params with Workload.Retail.rows = 400 * scale; target_rows = 200 * scale }
    in
    let source = Workload.Retail.source params in
    let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
    let source_table = Relational.Database.table source Workload.Retail.source_table_name in
    let infer = Ctxmatch.Context_match.infer_of `Naive ~target in
    let config = Ctxmatch.Config.with_seed Ctxmatch.Config.default base_seed in
    (* candidate views depend only on the base matches, which are
       bit-identical across modes; infer them once, outside the timed
       region, and force their row-index scans (condition evaluation,
       not scoring) up front *)
    let views =
      let probe = Matching.Standard_match.build ~jobs:1 ~kernel:false ~source ~target () in
      let m =
        Matching.Standard_match.matches_from probe
          ~src_table:Workload.Retail.source_table_name ~tau:config.Ctxmatch.Config.tau
      in
      let rng = Stats.Rng.create base_seed in
      let families =
        infer.Ctxmatch.Infer.infer (Stats.Rng.split rng) config ~source_table ~matches:m
      in
      let views = Ctxmatch.Infer.views_of_families families in
      List.iter (fun v -> ignore (Relational.View.row_count v)) views;
      views
    in
    let run_mode ~kernel =
      let best = ref infinity in
      let last = ref "" in
      for _rep = 1 to reps do
        let model = Matching.Standard_match.build ~jobs:1 ~kernel ~source ~target () in
        let m =
          Matching.Standard_match.matches_from model
            ~src_table:Workload.Retail.source_table_name ~tau:config.Ctxmatch.Config.tau
        in
        let t0 = Unix.gettimeofday () in
        let scored =
          List.map
            (fun view -> Matching.Standard_match.view_matches model view ~base_matches:m)
            views
        in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt;
        last := fp_scored (List.map (fun (bm : Matching.Schema_match.t) -> [ bm ]) m)
                ^ "\n--\n" ^ fp_scored scored
      done;
      (!best, List.length views, !last)
    in
    let old_s, old_views, old_fp = run_mode ~kernel:false in
    let new_s, new_views, new_fp = run_mode ~kernel:true in
    let identical = old_views = new_views && old_fp = new_fp in
    let speedup = old_s /. Float.max 1e-9 new_s in
    R.note
      (Printf.sprintf "scale %2dx: %d views, legacy %.1f ms -> kernel %.1f ms (%.2fx)%s" scale
         new_views (old_s *. 1e3) (new_s *. 1e3) speedup
         (if identical then "" else "  [MISMATCH]"));
    (scale, old_s, new_s, speedup, new_views, identical)
  in
  let entries = List.map measure [ 1; 4; 16 ] in
  let all_identical = List.for_all (fun (_, _, _, _, _, id) -> id) entries in
  let speedup_16 =
    List.find_map (fun (s, _, _, sp, _, _) -> if s = 16 then Some sp else None) entries
    |> Option.value ~default:0.0
  in
  let oc = open_out "BENCH_kernel.json" in
  Printf.fprintf oc "{\n  \"scales\": [\n";
  List.iteri
    (fun i (scale, old_s, new_s, speedup, views, identical) ->
      Printf.fprintf oc
        "    { \"scale\": %d, \"views\": %d, \"old_seconds\": %.6f, \"new_seconds\": %.6f, \
         \"speedup\": %.3f, \"identical_matches\": %b }%s\n"
        scale views old_s new_s speedup identical
        (if i < List.length entries - 1 then "," else ""))
    entries;
  Printf.fprintf oc "  ],\n  \"speedup_16x\": %.3f,\n  \"identical_matches\": %b\n}\n"
    speedup_16 all_identical;
  close_out oc;
  R.note
    (Printf.sprintf "wrote BENCH_kernel.json: speedup at 16x = %.2fx, identical = %b"
       speedup_16 all_identical);
  if not all_identical then begin
    Printf.eprintf "bench: kernel canary failed: kernel matches differ from legacy matches\n";
    exit 1
  end;
  if speedup_16 < 3.0 then begin
    Printf.eprintf "bench: kernel canary failed: speedup at 16x is %.2fx (< 3x)\n" speedup_16;
    exit 1
  end

(* --- Match-serving daemon under load (BENCH_serve.json) ----------------- *)

(* An in-process daemon with a registered prepared target, hammered by
   concurrent clients over a Unix socket.  Two claims are gated: every
   served reply is byte-identical to the one-shot oracle over the same
   inputs (the prepared-target artefact buys latency, never drift), and
   the daemon actually clears load (nonzero throughput, no errors, no
   admission rejects at this queue depth).  The JSON records client-side
   p50/p99 latency and throughput at [clients] concurrent connections. *)
let serve_report () =
  R.section "Serve daemon: identity + latency/throughput under concurrent clients";
  let dir = Filename.temp_file "ctxserve_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
  @@ fun () ->
  let params = { retail_params with Workload.Retail.rows = 200; target_rows = 100 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let payload db =
    List.map
      (fun table -> (Relational.Table.name table, Relational.Csv_io.table_to_csv table))
      (Relational.Database.tables db)
  in
  let source_payload = payload source and target_payload = payload target in
  (* the one-shot oracle, while the daemon is idle (one pool submitter) *)
  let want =
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let config = Ctxmatch.Config.with_seed Ctxmatch.Config.default base_seed in
    let r = count_issues (Ctxmatch.Context_match.run ~config ~infer ~source ~target ()) in
    List.map Matching.Schema_match.to_string r.Ctxmatch.Context_match.matches
  in
  let address = Serve.Server.Unix_sock (Filename.concat dir "bench.sock") in
  let server =
    Serve.Server.create
      { (Serve.Server.default_config address) with Serve.Server.queue_capacity = 256 }
  in
  let server_thread = Serve.Server.start server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Thread.join server_thread)
  @@ fun () ->
  let with_client f =
    let client = Serve.Client.connect ~retries:100 ~retry_delay_s:0.05 address in
    Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f client)
  in
  let served_matches reply =
    match Serve.Json.member "matches" reply with
    | Some (Serve.Json.List l) -> Some (List.filter_map Serve.Json.to_string_opt l)
    | _ -> None
  in
  let match_request = Serve.Protocol.match_json ~seed:base_seed ~target:"retail" source_payload in
  let identical =
    with_client @@ fun client ->
    let reply =
      Serve.Client.request client (Serve.Protocol.register_json ~name:"retail" target_payload)
    in
    (match Serve.Json.member "ok" reply with
    | Some (Serve.Json.Bool true) -> ()
    | _ -> failwith ("register failed: " ^ Serve.Json.to_string reply));
    (* identity gate + warmup in one: the first served match *)
    served_matches (Serve.Client.request client match_request) = Some want
  in
  let clients = 4 and per_client = 10 in
  let latencies = Array.make (clients * per_client) 0.0 in
  let errors = Atomic.make 0 in
  let worker k =
    with_client @@ fun client ->
    for i = 0 to per_client - 1 do
      let t0 = Unix.gettimeofday () in
      let reply = Serve.Client.request client match_request in
      latencies.((k * per_client) + i) <- Unix.gettimeofday () -. t0;
      if served_matches reply <> Some want then Atomic.incr errors
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun k -> Thread.create worker k) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare latencies;
  let percentile q =
    latencies.(int_of_float (q *. float_of_int (Array.length latencies - 1)))
  in
  let p50 = percentile 0.50 and p99 = percentile 0.99 in
  let total = clients * per_client in
  let throughput = float_of_int total /. Float.max 1e-9 wall in
  let counters = Serve.Server.counters server in
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    {|{
  "clients": %d,
  "requests": %d,
  "wall_seconds": %.6f,
  "throughput_rps": %.3f,
  "p50_ms": %.3f,
  "p99_ms": %.3f,
  "identical_matches": %b,
  "reply_errors": %d,
  "rejected": %d,
  "protocol_errors": %d
}
|}
    clients total wall throughput (p50 *. 1e3) (p99 *. 1e3) identical (Atomic.get errors)
    counters.Serve.Server.c_rejected counters.Serve.Server.c_protocol_errors;
  close_out oc;
  R.note
    (Printf.sprintf
       "wrote BENCH_serve.json: %d clients, %.1f req/s, p50 %.1f ms, p99 %.1f ms, identical = %b"
       clients throughput (p50 *. 1e3) (p99 *. 1e3) identical);
  if not identical then begin
    Printf.eprintf "bench: serve canary failed: served matches differ from one-shot run\n";
    exit 1
  end;
  if Atomic.get errors > 0 then begin
    Printf.eprintf "bench: serve canary failed: %d replies under load were wrong or not ok\n"
      (Atomic.get errors);
    exit 1
  end;
  if throughput <= 0.0 then begin
    Printf.eprintf "bench: serve canary failed: zero throughput\n";
    exit 1
  end;
  if counters.Serve.Server.c_rejected > 0 || counters.Serve.Server.c_protocol_errors > 0 then begin
    Printf.eprintf "bench: serve canary failed: %d rejected, %d protocol errors\n"
      counters.Serve.Server.c_rejected counters.Serve.Server.c_protocol_errors;
    exit 1
  end

(* --- Crash-recovery chaos (BENCH_chaos.json) ---------------------------- *)

(* The tentpole gate: a real `ctxmatch serve` subprocess soaks with
   torn-write faults armed and the store flushing after every match,
   gets SIGKILLed mid-flight (a request still being processed, no
   drain, no shutdown flush), and is warm-restarted over the damaged
   directory.  Three claims must hold or the figure exits 1:

   - zero corruption: the post-kill audit may find truncated shards
     (torn writes the END canary caught) but NEVER parseable garbage;
   - byte-identical recovery: every reply the restarted daemon serves
     equals the one-shot oracle over the same inputs;
   - clean final audit: after recovery + clean shutdown every store
     file is clean or quarantined and the index parses. *)
let chaos_report () =
  R.section "Chaos: SIGKILL mid-soak under torn-write faults, recovery audit";
  (* the real executable, located next to this bench binary so the
     figure works from any cwd *)
  let cli =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/ctxmatch_cli.exe"
  in
  if not (Sys.file_exists cli) then begin
    Printf.eprintf "bench: chaos needs %s (run `dune build` first)\n" cli;
    exit 1
  end;
  let dir = Filename.temp_file "ctxchaos_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
  @@ fun () ->
  let store_dir = Filename.concat dir "store" in
  let socket = Filename.concat dir "chaos.sock" in
  let address = Serve.Server.Unix_sock socket in
  let params = { retail_params with Workload.Retail.rows = 200; target_rows = 100 } in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let payload db =
    List.map
      (fun table -> (Relational.Table.name table, Relational.Csv_io.table_to_csv table))
      (Relational.Database.tables db)
  in
  let target_payload = payload target in
  let soak_seeds = [ base_seed; base_seed + 1; base_seed + 2; base_seed + 3 ] in
  let source seed = Workload.Retail.source { params with Workload.Retail.seed } in
  let oracle seed =
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let config = Ctxmatch.Config.with_seed Ctxmatch.Config.default base_seed in
    let r =
      count_issues (Ctxmatch.Context_match.run ~config ~infer ~source:(source seed) ~target ())
    in
    List.map Matching.Schema_match.to_string r.Ctxmatch.Context_match.matches
  in
  let spawn_daemon extra =
    Unix.create_process "sh"
      [|
        "sh"; "-c";
        Printf.sprintf "exec %s serve --socket %s --store %s --flush-every 1 %s > %s 2>&1"
          (Filename.quote cli) (Filename.quote socket) (Filename.quote store_dir) extra
          (Filename.quote (Filename.concat dir "daemon.log"));
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let with_client f =
    let client = Serve.Client.connect ~retries:200 ~retry_delay_s:0.05 address in
    Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f client)
  in
  let expect_ok reply =
    match Serve.Json.member "ok" reply with
    | Some (Serve.Json.Bool true) -> ()
    | _ -> failwith ("chaos: request failed: " ^ Serve.Json.to_string reply)
  in
  let served_matches reply =
    match Serve.Json.member "matches" reply with
    | Some (Serve.Json.List l) -> Some (List.filter_map Serve.Json.to_string_opt l)
    | _ -> None
  in
  let match_request seed =
    Serve.Protocol.match_json ~seed:base_seed ~target:"retail" (payload (source seed))
  in
  (* phase 1: soak under armed torn-write faults, then SIGKILL while a
     request is in flight *)
  let pid = spawn_daemon "--fault store-shard-write:1.0:3:torn=0.5" in
  let soak_completed = ref 0 in
  with_client (fun client ->
      expect_ok
        (Serve.Client.request client (Serve.Protocol.register_json ~name:"retail" target_payload));
      List.iter
        (fun seed ->
          expect_ok (Serve.Client.request client (match_request seed));
          incr soak_completed)
        soak_seeds;
      (* the mid-flight kill: one more request goes out, and the daemon
         dies while (or before) processing it — the client sees EOF or a
         reset, never a reply *)
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.05;
            Unix.kill pid Sys.sigkill)
          ()
      in
      (match Serve.Client.request client (match_request base_seed) with
      | _ -> ()
      | exception (End_of_file | Unix.Unix_error (_, _, _) | Serve.Json.Parse_error _) -> ());
      Thread.join killer);
  let _, status = Unix.waitpid [] pid in
  if status <> Unix.WSIGNALED Sys.sigkill then begin
    Printf.eprintf "bench: chaos canary failed: daemon did not die by SIGKILL\n";
    exit 1
  end;
  let damaged = Store.verify store_dir in
  (* phase 2: warm restart over the damaged store, faults disarmed;
     replay the soak and hold every reply to the oracle *)
  let pid2 = spawn_daemon "" in
  let identical = ref true in
  let recovered = ref 0 in
  with_client (fun client ->
      expect_ok
        (Serve.Client.request client (Serve.Protocol.register_json ~name:"retail" target_payload));
      List.iter
        (fun seed ->
          let reply = Serve.Client.request client (match_request seed) in
          if served_matches reply <> Some (oracle seed) then identical := false;
          incr recovered)
        soak_seeds;
      expect_ok (Serve.Client.request client Serve.Protocol.shutdown_json));
  let _, status2 = Unix.waitpid [] pid2 in
  let clean_exit = status2 = Unix.WEXITED 0 in
  let healed = Store.verify store_dir in
  let only_clean_or_quarantined =
    List.for_all
      (fun (e : Store.verify_entry) ->
        match e.Store.ve_status with
        | Store.Shard_clean | Store.Shard_quarantined -> true
        | Store.Shard_truncated | Store.Shard_corrupt -> false)
      healed.Store.vr_entries
  in
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    {|{
  "soak_requests": %d,
  "post_kill_truncated": %d,
  "post_kill_corrupt": %d,
  "recovered_requests": %d,
  "replies_identical": %b,
  "recovered_clean_exit": %b,
  "final_clean": %d,
  "final_quarantined": %d,
  "final_truncated": %d,
  "final_corrupt": %d,
  "final_index_ok": %b,
  "final_healthy": %b
}
|}
    !soak_completed damaged.Store.vr_truncated damaged.Store.vr_corrupt !recovered !identical
    clean_exit healed.Store.vr_clean healed.Store.vr_quarantined healed.Store.vr_truncated
    healed.Store.vr_corrupt healed.Store.vr_index_ok
    (Store.verify_healthy healed);
  close_out oc;
  R.note
    (Printf.sprintf
       "wrote BENCH_chaos.json: kill left %d truncated / %d corrupt; recovery identical = %b, \
        final audit healthy = %b"
       damaged.Store.vr_truncated damaged.Store.vr_corrupt !identical
       (Store.verify_healthy healed));
  if damaged.Store.vr_corrupt > 0 then begin
    Printf.eprintf
      "bench: chaos canary failed: %d shards are parseable garbage after SIGKILL (torn \
       writes must truncate, never corrupt)\n"
      damaged.Store.vr_corrupt;
    exit 1
  end;
  if not !identical then begin
    Printf.eprintf
      "bench: chaos canary failed: post-restart replies differ from the one-shot oracle\n";
    exit 1
  end;
  if not clean_exit then begin
    Printf.eprintf "bench: chaos canary failed: recovered daemon did not drain cleanly\n";
    exit 1
  end;
  if not (only_clean_or_quarantined && Store.verify_healthy healed) then begin
    Printf.eprintf
      "bench: chaos canary failed: final audit is not clean (%d truncated, %d corrupt, \
       index ok = %b)\n"
      healed.Store.vr_truncated healed.Store.vr_corrupt healed.Store.vr_index_ok;
    exit 1
  end

(* --- Incremental maintenance: delta patch vs cold rebuild ---------------- *)

(* A 1% mutation of the scaled Retail target, then the cost of making
   the target servable again: a cold [prepare_target] over the mutated
   database (what re-registering does) vs one [Delta.Maintain.update]
   on the patch path.  The figure is its own CI gate — it exits
   non-zero if the patched artefact's matches differ from the cold
   one's, if the delta fell off the patch path, or if the patch is
   less than 10x faster than the cold rebuild. *)
let delta_report () =
  R.section "Incremental maintenance: 1% delta patch vs cold target rebuild";
  (* a larger target than the other figures: cold preparation cost
     scales with rows tokenized, the patch path with delta size, and
     the gap is the whole point of this figure *)
  let params = { retail_params with target_rows = 2000 } in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let book = Relational.Database.table target "Book" in
  let rows = Relational.Table.row_count book in
  (* 1% of the table, half deletes half appends; appended rows are
     copies of existing ones so every gram stays in the frozen
     vocabulary and the delta patches instead of rebuilding *)
  let n = max 1 (rows / 200) in
  let delta =
    Delta.make ~table:"Book"
      ~appends:(Array.init n (fun i -> (Relational.Table.rows book).(i * 2)))
      ~deletes:(Array.init n (fun i -> (i * 2) + 1))
  in
  let mutation_pct = 100.0 *. float_of_int (Delta.size delta) /. float_of_int rows in
  let reps = 5 in
  let timed f =
    let best = ref infinity in
    let out = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let v = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some v
    done;
    (!best, Option.get !out)
  in
  let base_prepared = Matching.Standard_match.prepare_target ~target () in
  let mutated =
    Relational.Database.replace_table target (Delta.apply delta book)
  in
  (* the cold side is what re-registering the mutated target costs the
     serve daemon: a full [prepare_target] plus the cold profile scans
     of [Maintain.create] — [Maintain.update] maintains both at once *)
  let cold_s, (cold_prepared, _) =
    timed (fun () ->
        let p = Matching.Standard_match.prepare_target ~target:mutated () in
        let m = Delta.Maintain.create ~target:mutated ~prepared:p () in
        (p, m))
  in
  (* per rep: a fresh maintenance handle over the base artefact
     (untimed), then the timed O(delta) update *)
  let patch_best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    let m = Delta.Maintain.create ~target ~prepared:base_prepared () in
    let t0 = Unix.gettimeofday () in
    let outcome = Delta.Maintain.update m delta in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !patch_best then patch_best := dt;
    last := Some (m, outcome)
  done;
  let m, outcome = Option.get !last in
  let patch_s = !patch_best in
  let speedup = cold_s /. Float.max 1e-9 patch_s in
  let config = Ctxmatch.Config.with_seed Ctxmatch.Config.default base_seed in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target:mutated in
  let matches prepared =
    let r =
      count_issues
        (Ctxmatch.Context_match.run ~config ~prepared ~infer ~source ~target:mutated ())
    in
    List.map Matching.Schema_match.to_string r.Ctxmatch.Context_match.matches
  in
  let patched_matches = matches (Delta.Maintain.prepared m) in
  let cold_matches = matches cold_prepared in
  let identical = patched_matches = cold_matches && patched_matches <> [] in
  let outcome_name =
    match outcome with
    | Ok Delta.Maintain.Patched -> "patched"
    | Ok (Delta.Maintain.Rebuilt reason) -> "rebuilt: " ^ reason
    | Error e -> "error: " ^ e
  in
  let oc = open_out "BENCH_delta.json" in
  Printf.fprintf oc
    {|{
  "target_rows": %d,
  "delta_rows": %d,
  "mutation_pct": %.3f,
  "cold_ms": %.3f,
  "patch_ms": %.3f,
  "speedup": %.2f,
  "outcome": %S,
  "identical_matches": %b
}
|}
    rows (Delta.size delta) mutation_pct (cold_s *. 1e3) (patch_s *. 1e3) speedup outcome_name
    identical;
  close_out oc;
  R.note
    (Printf.sprintf
       "wrote BENCH_delta.json: cold %.2f ms -> patch %.3f ms (%.1fx), outcome %s, identical = %b"
       (cold_s *. 1e3) (patch_s *. 1e3) speedup outcome_name identical);
  if outcome_name <> "patched" then begin
    Printf.eprintf "bench: delta canary failed: delta fell off the patch path (%s)\n" outcome_name;
    exit 1
  end;
  if not identical then begin
    Printf.eprintf "bench: delta canary failed: patched matches differ from cold rebuild\n";
    exit 1
  end;
  if speedup < 10.0 then begin
    Printf.eprintf "bench: delta canary failed: patch only %.1fx faster than cold rebuild\n"
      speedup;
    exit 1
  end

(* --- Match plans: filtered retrieval vs cross product (BENCH_plan.json) - *)

(* End-to-end ContextMatch runs under three plans at growing scale:
   the default cross product, a full-width filter (k wide enough to
   keep every textual candidate — must be byte-identical to the
   default, proving the filter path changes nothing when it prunes
   nothing), and a narrow top-k filter (must score strictly fewer
   pairs than the cross product).  Two gates ride on the figure: any
   fingerprint drift between default and full-width fails the run, and
   so does a narrow filter that fails to shrink the scored-pair count
   at 16x scale.  Pair counts come from the run's own jobs-invariant
   accounting, not from timing. *)
let plan_report () =
  R.section "Match plans: q-gram candidate filter vs default cross product";
  R.note "expected shape: narrow filter scores fewer pairs; full-width filter identical output";
  let fp (r : Ctxmatch.Context_match.result) =
    String.concat "\n"
      (List.map
         (fun (m : Matching.Schema_match.t) ->
           Printf.sprintf "%s|%s|%s|%s.%s|%s|%h" m.src_owner m.src_base m.src_attr m.tgt_table
             m.tgt_attr
             (Relational.Condition.to_string m.condition)
             m.confidence)
         (r.Ctxmatch.Context_match.matches @ r.Ctxmatch.Context_match.standard))
  in
  let measure scale =
    let params =
      { retail_params with Workload.Retail.rows = 400 * scale; target_rows = 200 * scale }
    in
    let source = Workload.Retail.source params in
    let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
    let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
    let run plan =
      let config =
        { (Ctxmatch.Config.with_seed Ctxmatch.Config.default base_seed) with
          Ctxmatch.Config.jobs = 1;
          plan
        }
      in
      let best = ref infinity in
      let last = ref None in
      for _rep = 1 to reps do
        let t0 = Unix.gettimeofday () in
        let r = Ctxmatch.Context_match.run ~config ~infer ~source ~target () in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt;
        last := Some r
      done;
      (!best, Option.get !last)
    in
    let default_s, default_r = run Plan.Default in
    let wide_s, wide_r = run (Plan.Filtered { k = 1024; tau = 0.0 }) in
    let narrow_s, narrow_r = run (Plan.Filtered { k = 4; tau = 0.0 }) in
    let identical = fp default_r = fp wide_r in
    let default_pairs = default_r.Ctxmatch.Context_match.pairs_scored in
    let narrow_pairs = narrow_r.Ctxmatch.Context_match.pairs_scored in
    R.note
      (Printf.sprintf
         "scale %2dx: default %.1f ms / %d pairs; full-width %.1f ms; filter:4 %.1f ms / %d \
          pairs (%d pruned)%s"
         scale (default_s *. 1e3) default_pairs (wide_s *. 1e3) (narrow_s *. 1e3) narrow_pairs
         narrow_r.Ctxmatch.Context_match.pairs_pruned
         (if identical then "" else "  [MISMATCH]"));
    ( scale,
      default_s,
      wide_s,
      narrow_s,
      default_pairs,
      narrow_pairs,
      narrow_r.Ctxmatch.Context_match.pairs_pruned,
      identical )
  in
  let entries = List.map measure [ 1; 4; 16 ] in
  let all_identical = List.for_all (fun (_, _, _, _, _, _, _, id) -> id) entries in
  let fewer_at_16 =
    List.exists
      (fun (s, _, _, _, dp, np, _, _) -> s = 16 && np < dp)
      entries
  in
  let oc = open_out "BENCH_plan.json" in
  Printf.fprintf oc "{\n  \"scales\": [\n";
  List.iteri
    (fun i (scale, default_s, wide_s, narrow_s, dp, np, pruned, identical) ->
      Printf.fprintf oc
        "    { \"scale\": %d, \"default_seconds\": %.6f, \"full_width_seconds\": %.6f, \
         \"filter4_seconds\": %.6f, \"default_pairs\": %d, \"filter4_pairs\": %d, \
         \"filter4_pruned\": %d, \"identical_matches\": %b }%s\n"
        scale default_s wide_s narrow_s dp np pruned identical
        (if i < List.length entries - 1 then "," else ""))
    entries;
  Printf.fprintf oc
    "  ],\n  \"identical_matches\": %b,\n  \"filter_reduces_pairs_16x\": %b\n}\n" all_identical
    fewer_at_16;
  close_out oc;
  R.note
    (Printf.sprintf "wrote BENCH_plan.json: identical = %b, filter reduces pairs at 16x = %b"
       all_identical fewer_at_16);
  if not all_identical then begin
    Printf.eprintf "bench: plan canary failed: full-width filter differs from default plan\n";
    exit 1
  end;
  if not fewer_at_16 then begin
    Printf.eprintf
      "bench: plan canary failed: filter:4 did not score fewer pairs than the cross product \
       at 16x\n";
    exit 1
  end

(* --- Observability report (BENCH_obs.json) ----------------------------- *)

(* One instrumented end-to-end retail run under the obs recorder,
   exported with the degraded-work canary folded in.  The canary is the
   same counter the final "degraded:" line prints; putting it in the
   JSON lets CI assert on it without scraping stdout. *)
let obs_report () =
  R.section (Printf.sprintf "Observability: instrumented retail run (jobs=%d)" !par_jobs);
  Obs.Recorder.reset ();
  Obs.Metrics.reset ();
  Obs.Recorder.enable ();
  let params = retail_params in
  let source = Workload.Retail.source params in
  let target = Workload.Retail.target params Workload.Retail.Ryan_eyers in
  let config =
    Ctxmatch.Config.with_jobs (Ctxmatch.Config.with_seed Ctxmatch.Config.default base_seed)
      !par_jobs
  in
  let infer = Ctxmatch.Context_match.infer_of `Src_class ~target in
  ignore (count_issues (Ctxmatch.Context_match.run ~config ~infer ~source ~target ()));
  Obs.Recorder.disable ();
  let snap = Obs.Metrics.snapshot () in
  Obs.Export.write_metrics
    ~extra:
      [
        ("degraded_issues", string_of_int !degraded_issues);
        ("jobs", string_of_int !par_jobs);
      ]
    "BENCH_obs.json";
  R.note
    (Printf.sprintf "wrote BENCH_obs.json: %d spans, %d pool tasks, %d cache lookups"
       (Obs.Recorder.event_count ())
       (Obs.Metrics.counter_value snap "pool.tasks")
       (Obs.Metrics.counter_value snap "cache.profile.lookups"))

(* --- driver ------------------------------------------------------------ *)

let figures =
  [
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("fig12", fig12); ("fig13", fig13); ("fig14", fig14); ("fig15", fig15);
    ("fig16", fig16); ("fig17", fig17); ("fig18", fig18); ("fig19", fig19);
    ("fig20", fig20); ("fig21", fig21); ("fig22", fig22);
    ("abl-gating", ablation_gating); ("abl-range", ablation_range);
    ("abl-clio", ablation_clio); ("ext", extensions); ("micro", micro);
    ("store", store_report);
    ("kernel", kernel_report);
    ("serve", serve_report);
    ("chaos", chaos_report);
    ("delta", delta_report);
    ("plan", plan_report);
  ]

let () =
  let args =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun arg ->
           match String.index_opt arg '=' with
           | Some i when String.sub arg 0 i = "--jobs" ->
             (match int_of_string_opt (String.sub arg (i + 1) (String.length arg - i - 1)) with
             | Some j when j >= 1 -> par_jobs := j
             | Some _ | None ->
               Printf.eprintf "bench: --jobs expects a positive integer, got %S\n" arg;
               exit 2);
             false
           | _ -> true)
  in
  let requested =
    match args with
    | _ :: _ as names -> names
    | [] -> List.map fst figures
  in
  let started = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name figures with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown figure %s; known: %s\n" name
          (String.concat " " (List.map fst figures));
        exit 1)
    requested;
  (* always last, so the JSON canary counts every measured run above *)
  obs_report ();
  Printf.printf "\ndegraded: %d issues\n" !degraded_issues;
  Printf.printf "total bench time: %.1fs\n" (Unix.gettimeofday () -. started)
